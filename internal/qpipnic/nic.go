// Package qpipnic implements the QPIP network interface firmware — the
// paper's core contribution (§3, §4.1). The adapter offloads the complete
// TCP/UDP/IPv6 stack beneath the queue pair abstraction. Its operation is
// organized as the paper's four finite state machines:
//
//   - doorbell FSM: drains the hardware doorbell FIFO and marks QPs with
//     outstanding work requests;
//   - management FSM: privileged commands (QP/CQ creation, port binding,
//     connection management);
//   - schedule/transmit FSM: polls active endpoints, fetches WRs and data
//     by DMA, builds TCP/UDP and IPv6 headers, and injects packets;
//   - receive FSM: parses arriving packets, runs TCP input processing
//     (RTT estimators, window state), places data by DMA and posts
//     completions.
//
// Every stage charges the 133 MHz firmware processor the stage costs the
// paper measured (Tables 2 and 3), so the simulated adapter's occupancy —
// the quantity that limits QPIP at small MTUs (§4.2.1) — emerges from the
// same per-stage accounting the LANai prototype exhibited.
package qpipnic

import (
	"bytes"
	"errors"
	"fmt"
	"sort"

	"repro/internal/buf"
	"repro/internal/fabric"
	"repro/internal/hw"
	"repro/internal/inet"
	"repro/internal/params"
	"repro/internal/pool"
	"repro/internal/sim"
	"repro/internal/tcp"
	"repro/internal/trace"
	"repro/internal/udp"
	"repro/internal/verbs"
)

// ChecksumMode selects receive-side IP checksum placement (paper §4.2.1:
// the LANai could not hardware-checksum on receive; results are reported
// both with an emulated hardware checksum and a firmware checksum).
type ChecksumMode int

const (
	// ChecksumEmulatedHW models the hardware-assisted receive checksum
	// the figures assume: verification is free to the firmware CPU.
	ChecksumEmulatedHW ChecksumMode = iota
	// ChecksumFirmware charges the software checksum loop
	// (params.FirmwareChecksumCyclesPerByte).
	ChecksumFirmware
)

// Config parameterizes a QPIP adapter.
type Config struct {
	Name string
	// Addr is the adapter's IPv6 address.
	Addr inet.Addr6
	// MTU is the native MTU; one QP message maps to one TCP segment, so
	// MaxMessage = MTU - headers (paper §4.1; 16 KB native).
	MTU int
	// Checksum selects receive checksum placement.
	Checksum ChecksumMode
	// PipelinedTX lets the transmit FSM start the next work request while
	// the network send engine is still serializing the previous packet.
	// The prototype's simple FSM loop did not (ablation knob).
	PipelinedTX bool
	// NoDelAck disables the firmware's BSD-style delayed acks (ack at
	// least every second segment). The prototype's TCP derives from the
	// BSD code in Stevens & Wright, where delayed acks are the default;
	// disabling them is the ablation.
	NoDelAck bool
	// HostCPU is the processor verbs costs and wakeup interrupts land on.
	HostCPU *sim.CPU
	// Bus is the host's PCI bus, shared with other adapters.
	Bus *hw.PCIBus
	// Routes resolves IPv6 addresses to fabric attachments (the
	// prototype's static address resolution table, §4.1).
	Routes *inet.Table6
	// MaxQPs bounds adapter-resident QP/TCB state (SRAM is finite);
	// 0 means params.QPIPMaxQPs. CreateQP beyond it is refused with
	// verbs.ErrNoResources — graceful degradation, not a hang.
	MaxQPs int
	// CQCoalescePkts / CQCoalesceDelay pace the per-CQ completion event
	// lines (the unified hw.IRQLine model the conventional adapters also
	// use). Zero values deliver every armed-waiter event immediately —
	// timing-identical to the pre-coalescing direct wake.
	CQCoalescePkts  int
	CQCoalesceDelay sim.Time
}

// tcpKey demultiplexes established connections.
type tcpKey struct {
	localPort  uint16
	remoteAddr inet.Addr6
	remotePort uint16
}

// stashedRec is an in-order record that arrived before its receive WR was
// posted; it waits in adapter SRAM.
type stashedRec struct {
	payload buf.Buf
}

// qpState is the adapter-resident state of one QP: the inter-network
// protocol state (the TCB) plus WR bookkeeping. "A common data structure
// is used to maintain the state of the individual QPs and includes the
// inter-network protocol specific information, namely the TCP
// transmission control block" (paper §3.1).
type qpState struct {
	qp   *verbs.QP
	conn *tcp.Conn // nil for UDP QPs

	localPort  uint16
	remoteAddr inet.Addr6
	remotePort uint16
	remoteAtt  int

	// sendIDs holds WR IDs of messages accepted by the TCB, in order;
	// TCP completions pop from the front as records are acknowledged.
	// Both sendIDs and stash drain through head indices so steady-state
	// traffic reuses one backing array instead of re-slicing per record.
	sendIDs  []uint64
	sendHead int
	// pendingWRs counts doorbell tokens not yet consumed by the
	// transmit FSM.
	pendingWRs int
	stash      []stashedRec
	stashHead  int
	timer      *sim.Event
	peerClosed bool
	// peerEpoch is the sender boot generation this connection is fenced
	// to: adopted from the first frame, stale frames dropped, a newer
	// epoch fails the QP (the peer rebooted; see DESIGN §13).
	peerEpoch uint32
	// stashBytes tracks the SRAM bytes pinned by stashed records (part of
	// the connection's accounted SRAM footprint).
	stashBytes int
	// srqs links an SRQ-attached QP to the adapter-side pool state;
	// srqWait marks it parked on the pool's waiter FIFO (dup-idempotent
	// enqueue).
	srqs    *srqState
	srqWait bool
	// rnr counts receiver-not-ready events on this connection: in-order
	// records that arrived with no posted receive WR and had to wait in
	// adapter SRAM (the QPIP analog of an Infiniband RNR NAK; the TCP
	// window closes instead of NAKing).
	rnr uint64
	// staleEpoch counts frames fenced off this connection as pre-crash
	// stragglers.
	staleEpoch uint64

	// Pre-bound callbacks (set at QP creation) so the hot doorbell,
	// receive-posted, and timer paths never allocate a closure.
	timerFn func()
	ringFn  func()
	recvFn  func()
}

func (qs *qpState) pushSendID(id uint64) { qs.sendIDs = append(qs.sendIDs, id) }

// popLastSendID undoes the most recent push (TCB refused the message).
func (qs *qpState) popLastSendID() { qs.sendIDs = qs.sendIDs[:len(qs.sendIDs)-1] }

func (qs *qpState) popSendID() (uint64, bool) {
	if qs.sendHead >= len(qs.sendIDs) {
		return 0, false
	}
	id := qs.sendIDs[qs.sendHead]
	qs.sendHead++
	if qs.sendHead == len(qs.sendIDs) {
		qs.sendIDs, qs.sendHead = qs.sendIDs[:0], 0
	}
	return id, true
}

func (qs *qpState) stashLen() int { return len(qs.stash) - qs.stashHead }

func (qs *qpState) pushStash(rec buf.Buf) {
	qs.stashBytes += rec.Len()
	qs.stash = append(qs.stash, stashedRec{payload: rec})
}

func (qs *qpState) peekStash() (buf.Buf, bool) {
	if qs.stashHead >= len(qs.stash) {
		return buf.Empty, false
	}
	return qs.stash[qs.stashHead].payload, true
}

func (qs *qpState) popStash() {
	qs.stashBytes -= qs.stash[qs.stashHead].payload.Len()
	qs.stash[qs.stashHead] = stashedRec{}
	qs.stashHead++
	if qs.stashHead == len(qs.stash) {
		qs.stash, qs.stashHead = qs.stash[:0], 0
	}
}

// Stats counts adapter-level events.
type Stats struct {
	DataSends, AckSends uint64
	DataRecvs, AckRecvs uint64
	UDPSends, UDPRecvs  uint64
	ChecksumErrors      uint64
	NoRouteDrops        uint64
	NoPortDrops         uint64
	NoWRDrops           uint64
	StashedRecords      uint64
	Retransmissions     uint64
}

// NIC is one QPIP adapter.
type NIC struct {
	eng *sim.Engine
	cfg Config
	cpu *sim.CPU
	db  *hw.Doorbell
	fab *fabric.Fabric
	att int

	// dbTokens queues vectored doorbell tokens between the PIO write call
	// and its arrival at the adapter; the bus server is FIFO, so tokens
	// pop in write order. The head-drain reuse keeps the steady state
	// allocation-free, and ringTokFn is bound once here so SendDoorbellN
	// needs no per-call closure.
	dbTokens  []uint64
	dbTokHead int
	ringTokFn func()

	qpnNext uint32
	// qpnFree recycles destroyed QPNs LIFO (deterministic). It is wiped
	// on crash, preserving the invariant that a rebooted adapter never
	// reissues a pre-crash QPN (epoch fencing relies on it).
	qpnFree []uint32
	// qps is the hashed QP state table (qptable.go): the flat per-QPN
	// map became a fixed-layout SRAM structure once connection counts
	// grew past hundreds.
	qps *qpTable
	// srqs is the adapter-side state of host SRQs, in attach order.
	srqs     []*srqState
	tcpConns map[tcpKey]*qpState
	listeners map[uint16]*verbs.Listener
	udpPorts  *udp.PortSpace[*qpState]
	tcpPorts  map[uint16]bool // allocated TCP local ports
	nextEphem uint16
	issCount  uint32

	// collGroups is the collective engine's group table (coll.go): one
	// entry per joined group, keyed access only.
	collGroups map[uint16]*collGroup

	// down marks a crashed adapter: frames are dropped on the floor and
	// management verbs refuse with verbs.ErrNICDown until Restart.
	down bool
	// bootEpoch is the adapter's boot generation, stamped on every
	// outgoing frame; it starts at 1 and increments on Restart so
	// receivers can fence pre-crash stragglers (crash.go).
	bootEpoch uint32

	// Transmit FSM scheduler. txQ drains through txQHead (see kickTx);
	// txDoneFn is the one per-adapter work-completion callback.
	txQ      []txWork
	txQHead  int
	txBusy   bool
	txDoneFn func()

	// Pooled FSM stage runners and their pre-resolved stage templates.
	chainTemplates
	chainFree []*chainRun

	// dbScratch is the doorbell FSM's vectored drain buffer (PopN).
	dbScratch [64]uint64

	// Per-stage occupancy, split by the four table columns, plus the
	// collective engine's stages.
	TxData, TxAck, RxData, RxAck, Coll *trace.Stages
	// Net counts fault-visible events (rx.corrupt, tx.retransmit,
	// conn.retry-exceeded, ...) for the chaos benches.
	Net   *trace.Counters
	stats Stats
}

// New builds an adapter and attaches it to fab.
func New(eng *sim.Engine, fab *fabric.Fabric, cfg Config) *NIC {
	if cfg.MTU <= 0 {
		cfg.MTU = params.MTUQPIP
	}
	n := &NIC{
		eng:        eng,
		cfg:        cfg,
		cpu:        sim.NewCPU(eng, cfg.Name+".lanai", params.NICClockHz),
		db:         hw.NewDoorbell(1024),
		fab:        fab,
		qps:        newQPTable(),
		tcpConns:   make(map[tcpKey]*qpState),
		listeners:  make(map[uint16]*verbs.Listener),
		udpPorts:   udp.NewPortSpace[*qpState](),
		tcpPorts:   make(map[uint16]bool),
		nextEphem:  49152,
		bootEpoch:  1,
		collGroups: make(map[uint16]*collGroup),
		TxData:     trace.NewStages(),
		TxAck:      trace.NewStages(),
		RxData:     trace.NewStages(),
		RxAck:      trace.NewStages(),
		Coll:       trace.NewStages(),
		Net:        trace.NewCounters(),
	}
	n.initTemplates()
	n.txDoneFn = func() {
		n.txBusy = false
		n.kickTx()
	}
	n.ringTokFn = func() {
		tok := n.dbTokens[n.dbTokHead]
		n.dbTokHead++
		if n.dbTokHead == len(n.dbTokens) {
			n.dbTokens = n.dbTokens[:0]
			n.dbTokHead = 0
		}
		n.db.Ring(tok)
	}
	n.att = fab.AttachOn(eng, n.receiveFrame)
	n.db.OnRing = n.onDoorbell
	n.db.OnDrop = func() { n.Net.Add("db.drop", 1) }
	return n
}

// Addr reports the adapter's IPv6 address.
func (n *NIC) Addr() inet.Addr6 { return n.cfg.Addr }

// Attachment reports the adapter's fabric attachment id.
func (n *NIC) Attachment() int { return n.att }

// CPU exposes the firmware processor (occupancy measurements).
func (n *NIC) CPU() *sim.CPU { return n.cpu }

// Stats returns adapter counters.
func (n *NIC) Stats() Stats { return n.stats }

// ConnStats is one connection's diagnostic record: its identity, the TCB
// counters, and the adapter-side error counters that do not live in the
// TCB (RNR stalls, epoch fencing).
type ConnStats struct {
	LocalPort  uint16
	RemoteAddr inet.Addr6
	RemotePort uint16
	TCP        tcp.Stats
	// RNR counts receiver-not-ready stalls (records parked in SRAM for
	// want of a posted receive WR).
	RNR uint64
	// StaleEpoch counts pre-crash straggler frames fenced off this
	// connection.
	StaleEpoch uint64
	// SRAMBytes is the connection's accounted adapter-SRAM footprint:
	// TCB + QP context, its state-table slot, and any stashed records.
	SRAMBytes int
}

// sortedConns returns the live connections in connection-key order so
// diffing two runs' diagnostics is meaningful.
func (n *NIC) sortedConns() []tcpKey {
	keys := make([]tcpKey, 0, len(n.tcpConns))
	for k := range n.tcpConns {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		a, b := keys[i], keys[j]
		if a.localPort != b.localPort {
			return a.localPort < b.localPort
		}
		if c := bytes.Compare(a.remoteAddr[:], b.remoteAddr[:]); c != 0 {
			return c < 0
		}
		return a.remotePort < b.remotePort
	})
	return keys
}

// DebugConnStats exposes per-connection diagnostics with stable sorted
// emission (connection-key order).
func (n *NIC) DebugConnStats() []ConnStats {
	keys := n.sortedConns()
	out := make([]ConnStats, 0, len(keys))
	for _, k := range keys {
		qs := n.tcpConns[k]
		out = append(out, ConnStats{
			LocalPort:  k.localPort,
			RemoteAddr: k.remoteAddr,
			RemotePort: k.remotePort,
			TCP:        qs.conn.Stats(),
			RNR:        qs.rnr,
			StaleEpoch: qs.staleEpoch,
			SRAMBytes:  params.SRAMConnBytes + params.SRAMQPSlotBytes + qs.stashBytes,
		})
	}
	return out
}

// AddConnCounters folds the adapter's fault-visible counters plus the
// per-connection retry/RNR/fence tallies into dst under stable names, in
// sorted connection order, so summing a cluster of adapters into one
// recovery report is deterministic (trace.Counters.AddAll composes these
// across nodes).
func (n *NIC) AddConnCounters(dst *trace.Counters) {
	dst.AddAll(n.Net)
	for _, k := range n.sortedConns() {
		qs := n.tcpConns[k]
		st := qs.conn.Stats()
		dst.Add("conn.retransmits", st.Retransmits)
		dst.Add("conn.timeouts", st.Timeouts)
		dst.Add("conn.rnr", qs.rnr)
		dst.Add("conn.stale-epoch", qs.staleEpoch)
		dst.Add("conn.sram-bytes", uint64(params.SRAMConnBytes+params.SRAMQPSlotBytes+qs.stashBytes))
	}
}

// SRAMFootprint reports the adapter SRAM pinned by connection state right
// now: the state-table index, one TCB+QP context per live entry, and
// stashed records. This is the per-connection-memory quantity the
// connscale experiment sweeps; trace counters surface it per connection
// via AddConnCounters ("conn.sram-bytes").
func (n *NIC) SRAMFootprint() int {
	total := n.qps.slots() * params.SRAMQPSlotBytes
	for _, e := range n.qps.entries {
		if e.qs != nil {
			total += params.SRAMConnBytes + e.qs.stashBytes
		}
	}
	return total
}

// LiveQPs reports live state-table entries.
func (n *NIC) LiveQPs() int { return n.qps.len() }

// ResetStages clears occupancy instrumentation (benchmark warmup).
func (n *NIC) ResetStages() {
	n.TxData.Reset()
	n.TxAck.Reset()
	n.RxData.Reset()
	n.RxAck.Reset()
	n.Coll.Reset()
}

// ---- verbs.Device implementation (management FSM). ----

// HostCPU implements verbs.Device.
func (n *NIC) HostCPU() *sim.CPU { return n.cfg.HostCPU }

// MaxMessage implements verbs.Device: one message maps onto one TCP
// segment, so messages are bounded by MTU minus IPv6 and TCP headers
// (with the RFC 1323 timestamp option the prototype always sends).
func (n *NIC) MaxMessage() int {
	return n.cfg.MTU - inet.IPv6HeaderLen - tcp.BaseHeaderLen - tcp.TimestampOptLen
}

// maxQPs reports the adapter's QP/TCB state-table capacity.
func (n *NIC) maxQPs() int {
	if n.cfg.MaxQPs > 0 {
		return n.cfg.MaxQPs
	}
	return params.QPIPMaxQPs
}

// admitQP allocates a fresh state-table entry for qp, refusing on SRAM
// exhaustion (shared by CreateQP and post-crash ResetQP re-admission).
func (n *NIC) admitQP(qp *verbs.QP) error {
	if n.qps.len() >= n.maxQPs() {
		n.Net.Add("mgmt.qp-refused", 1)
		n.Net.Add("qp.exhausted", 1)
		return &verbs.QPExhaustedError{Current: n.qps.len(), Capacity: n.maxQPs()}
	}
	qs := &qpState{qp: qp}
	if srq := qp.SRQ(); srq != nil {
		qs.srqs = n.srqFor(srq)
	}
	qs.timerFn = func() { n.onQPTimer(qs) }
	qs.ringFn = func() { n.db.Ring(uint64(qp.QPN)) }
	qs.recvFn = func() {
		// The QP may have been destroyed while the PIO write was in
		// flight; the state entry is only live while it's still mapped.
		if n.qps.get(qp.QPN) != qs {
			return
		}
		n.drainStashAndUpdate(qs)
	}
	n.qps.put(qp.QPN, qs)
	return nil
}

// AllocQPN implements verbs.Device: per-adapter allocation, offset by the
// fabric attachment id so QPNs stay cluster-unique and deterministic no
// matter how shard engines interleave QP creation. Low QPNs are reserved,
// as in Infiniband. Destroyed QPNs recycle LIFO so connection churn does
// not grow the number space (and with it the state-table index) without
// bound; the free list is wiped on crash, so the counter's invariant
// survives — a rebooted adapter never reissues a pre-crash QPN.
func (n *NIC) AllocQPN() uint32 {
	if k := len(n.qpnFree); k > 0 {
		qpn := n.qpnFree[k-1]
		n.qpnFree = n.qpnFree[:k-1]
		n.Net.Add("qpn.recycled", 1)
		return qpn
	}
	n.qpnNext++
	return uint32(n.att)<<16 | (16 + n.qpnNext)
}

// CreateQP implements verbs.Device. The state table lives in finite
// adapter SRAM; exhaustion refuses the QP instead of overcommitting.
func (n *NIC) CreateQP(qp *verbs.QP) error {
	if n.down {
		return verbs.ErrNICDown
	}
	n.mgmtCost()
	return n.admitQP(qp)
}

// ResetQP implements verbs.Device: return a QP to the reset state on the
// adapter. A live TCB is aborted (the peer gets an RST), the entry's WR
// and stash bookkeeping is wiped, and consumed-but-unacked send WRs
// complete with StatusFlushed — first in the deterministic flush order
// (the host's ModifyQP flushes the posted queues right after). If the
// adapter crashed since the QP was created, the state-table entry is gone
// and the QP is re-admitted subject to capacity.
func (n *NIC) ResetQP(qp *verbs.QP) error {
	if n.down {
		return verbs.ErrNICDown
	}
	n.mgmtCost()
	qs := n.qps.get(qp.QPN)
	if qs == nil {
		// Crash wiped the state table: re-admission path.
		return n.admitQP(qp)
	}
	if qs.conn != nil {
		n.reapConn(qs)
		acts := qs.conn.Abort(int64(n.eng.Now()))
		if len(acts.Segments) > 0 {
			// The RST needs routing state that outlives the reset; hand it
			// a transient endpoint record like sendRST does.
			tmp := &qpState{localPort: qs.localPort, remoteAddr: qs.remoteAddr,
				remotePort: qs.remotePort, remoteAtt: qs.remoteAtt}
			for _, seg := range acts.Segments {
				n.enqueueTx(txWork{qs: tmp, seg: seg})
			}
		}
		qs.conn = nil
	} else if qs.localPort != 0 {
		n.udpPorts.Unbind(qs.localPort)
	}
	if qs.timer != nil {
		qs.timer.Cancel()
		qs.timer = nil
	}
	ids := qs.sendIDs[qs.sendHead:]
	for _, id := range ids {
		qp.CompleteSend(id, verbs.StatusFlushed, 0)
	}
	qs.sendIDs, qs.sendHead = nil, 0
	qs.stash, qs.stashHead = nil, 0
	qs.stashBytes = 0
	qs.pendingWRs = 0
	qs.peerClosed = false
	qs.peerEpoch = 0
	qs.rnr, qs.staleEpoch = 0, 0
	qs.localPort, qs.remotePort, qs.remoteAtt = 0, 0, 0
	qs.remoteAddr = inet.Addr6{}
	return nil
}

// DestroyQP implements verbs.Device: closes any connection and flushes.
// The state-table entry is recycled, and so is the QPN — churn reuses
// slots instead of growing the table.
func (n *NIC) DestroyQP(qp *verbs.QP) {
	qs := n.qps.get(qp.QPN)
	if qs == nil {
		return
	}
	n.mgmtCost()
	if qs.conn != nil {
		now := int64(n.eng.Now())
		acts, err := qs.conn.Close(now)
		if err == nil {
			n.handleActions(qs, acts, nil)
		}
		n.syncTimer(qs)
	}
	if qs.localPort != 0 && qs.conn == nil {
		n.udpPorts.Unbind(qs.localPort)
	}
	qp.Flush()
	n.qps.del(qp.QPN)
	n.qpnFree = append(n.qpnFree, qp.QPN)
}

// BindUDP implements verbs.Device.
func (n *NIC) BindUDP(qp *verbs.QP, port uint16) (uint16, error) {
	qs := n.qps.get(qp.QPN)
	if qs == nil {
		return 0, errors.New("qpipnic: unknown QP")
	}
	if n.down {
		return 0, verbs.ErrNICDown
	}
	n.mgmtCost()
	got, err := n.udpPorts.Bind(port, qs)
	if err != nil {
		return 0, err
	}
	qs.localPort = got
	return got, nil
}

// allocTCPPort grabs a free local TCP port.
func (n *NIC) allocTCPPort() uint16 {
	for {
		p := n.nextEphem
		n.nextEphem++
		if n.nextEphem == 0 {
			n.nextEphem = 49152
		}
		if !n.tcpPorts[p] {
			n.tcpPorts[p] = true
			return p
		}
	}
}

// connConfig builds the record-mode TCB configuration for a QP.
func (n *NIC) connConfig(local, remote uint16) tcp.Config {
	n.issCount += 64000
	return tcp.Config{
		LocalPort:  local,
		RemotePort: remote,
		Mode:       tcp.Record,
		MSS:        n.MaxMessage(),
		RecvWindow: -1, // window derives from posted receive WRs
		// 1 MB cap picks window scale 5 (32-byte granularity); larger caps
		// would round small posted-WR windows down to zero and stall tiny
		// messages.
		MaxRecvWindow: 1 << 20,
		WindowScale:   true,
		Timestamps:    true,
		DelayedAck:    !n.cfg.NoDelAck,
		NoDelay:       true,
		ISS:           tcp.Seq(n.issCount),
		MaxRetries:    params.TCPMaxRetries,
		SynMaxRetries: params.TCPSynMaxRetries,
	}
}

// Connect implements verbs.Device: active open. The SYN/ACK handshake is
// handled entirely by the interface (paper §3).
func (n *NIC) Connect(qp *verbs.QP, raddr inet.Addr6, rport uint16) error {
	qs := n.qps.get(qp.QPN)
	if qs == nil {
		return errors.New("qpipnic: unknown QP")
	}
	if n.down {
		return verbs.ErrNICDown
	}
	att, err := n.cfg.Routes.Lookup(raddr)
	if err != nil {
		return fmt.Errorf("%w: %v", verbs.ErrNoRoute, raddr)
	}
	n.mgmtCost()
	qs.localPort = n.allocTCPPort()
	qs.remoteAddr, qs.remotePort, qs.remoteAtt = raddr, rport, att
	qs.conn = tcp.NewConn(n.connConfig(qs.localPort, rport))
	qs.conn.ReuseActionBuffers(pool.Enabled())
	n.tcpConns[tcpKey{qs.localPort, raddr, rport}] = qs
	now := int64(n.eng.Now())
	acts, err := qs.conn.Connect(now)
	if err != nil {
		return err
	}
	n.handleActions(qs, acts, nil)
	n.syncTimer(qs)
	return nil
}

// Listen implements verbs.Device: "The server application instructs the
// interface to monitor a TCP port for incoming connections" (paper §3).
func (n *NIC) Listen(port uint16) (*verbs.Listener, error) {
	if n.down {
		return nil, verbs.ErrNICDown
	}
	if n.listeners[port] != nil || n.tcpPorts[port] {
		return nil, verbs.ErrPortBusy
	}
	n.mgmtCost()
	n.tcpPorts[port] = true
	l := verbs.NewListener(port, n)
	n.listeners[port] = l
	return l, nil
}

// SendDoorbell implements verbs.Device: the host's posting method rings
// the hardware doorbell; the write crosses the PCI bus into the FIFO.
func (n *NIC) SendDoorbell(qp *verbs.QP) {
	if qs := n.qps.get(qp.QPN); qs != nil {
		n.cfg.Bus.PIOWrite("doorbell", qs.ringFn)
		return
	}
	//lint:qpip-allow hotprop unknown-QPN fallback for rings that race QP teardown; live QPs take the pre-bound ringFn path above
	n.cfg.Bus.PIOWrite("doorbell", func() {
		n.db.Ring(uint64(qp.QPN))
	})
}

// RecvPosted implements verbs.Device: new receive buffer space arrived.
// The notification crosses the bus like a doorbell; the firmware grows
// the TCP receive window accordingly and drains any stashed records.
func (n *NIC) RecvPosted(qp *verbs.QP) {
	if qs := n.qps.get(qp.QPN); qs != nil {
		n.cfg.Bus.PIOWrite("recv-doorbell", qs.recvFn)
		return
	}
	n.cfg.Bus.PIOWrite("recv-doorbell", nil)
}

// dbToken encodes a vectored doorbell token: the QPN in the low 32 bits,
// the WR count in the high 32. A count of 0 means 1 — the per-token
// ringFn writes a bare QPN, so legacy tokens decode unchanged.
func dbToken(qpn uint32, count int) uint64 {
	return uint64(qpn) | uint64(uint32(count))<<32
}

// SendDoorbellN implements verbs.Device: one vectored doorbell announcing
// n posted send WRs — a single PIO write regardless of batch size.
func (n *NIC) SendDoorbellN(qp *verbs.QP, count int) {
	if n.dbTokHead > 0 && n.dbTokHead == len(n.dbTokens) {
		n.dbTokens = n.dbTokens[:0]
		n.dbTokHead = 0
	}
	n.dbTokens = append(n.dbTokens, dbToken(qp.QPN, count))
	n.cfg.Bus.PIOWrite("doorbell", n.ringTokFn)
}

// RecvPostedN implements verbs.Device: one notification write covering a
// batch of receive WRs. The window grows from PostedRecvBytes, which the
// host already updated for the whole batch, so a single write suffices.
func (n *NIC) RecvPostedN(qp *verbs.QP, count int) {
	n.RecvPosted(qp)
}

// AttachCQ implements verbs.Device: bind the CQ's completion wakeups to
// a coalescible event line, replacing the old ad-hoc per-token wake. The
// ISR only wakes the armed waiter — the lightweight-ISR CPU cost stays
// charged in CQ.Wait (VerbsWakeupUS), so with zero coalescing delay this
// path is timing-identical to the direct wake.
func (n *NIC) AttachCQ(cq *verbs.CQ) {
	line := hw.NewIRQLine(n.eng, func(int) { cq.EventWake() })
	line.SetCoalesce(n.cfg.CQCoalescePkts, n.cfg.CQCoalesceDelay)
	cq.BindEvent(line)
}

// updateWindow re-advertises the window from posted WR capacity.
//
//qpip:hotpath
func (n *NIC) updateWindow(qs *qpState) {
	if qs.conn == nil {
		return
	}
	posted := qs.qp.PostedRecvBytes()
	acts := qs.conn.SetRecvWindow(posted, int64(n.eng.Now()))
	n.handleActions(qs, acts, nil)
	n.syncTimer(qs)
	// An SRQ-attached connection that just advertised off an empty pool
	// parks on the pool: only a repost can reopen its window, and the
	// peer's probes would otherwise see zero forever.
	if posted == 0 {
		n.enqueueSRQWaiter(qs)
	}
}

// reapConn unlinks a dead TCB from the demux and port tables. Every
// connection-death path (graceful close, RST, retry exhaustion, host
// reset) funnels through here so churn cannot grow either table: before
// this, tcpConns and the ephemeral reservation in tcpPorts leaked on
// graceful close, and 16k churned connections exhausted the port space.
// A listener's port reservation is owned by the listener, not by the
// accepted children that share it, so it stays.
func (n *NIC) reapConn(qs *qpState) {
	delete(n.tcpConns, tcpKey{qs.localPort, qs.remoteAddr, qs.remotePort})
	if n.listeners[qs.localPort] == nil {
		delete(n.tcpPorts, qs.localPort)
	}
}

// LiveTCPConns reports the number of TCBs resident in the adapter's demux
// table — the churn benches assert it returns to baseline.
func (n *NIC) LiveTCPConns() int { return len(n.tcpConns) }

// mgmtCost charges the management FSM for one privileged command.
func (n *NIC) mgmtCost() {
	n.cpu.Do(params.US(5), "mgmt", nil)
}

// notifyHost schedules a host-visible event (connection established,
// errors) through the lightweight interrupt path.
func (n *NIC) notifyHost(fn func()) {
	//lint:qpip-allow hotprop host notifications are connection-lifecycle events (establish, reset, flush), not per-packet datapath work
	n.cfg.Bus.DMA(32, "event", func() {
		n.cfg.HostCPU.Do(params.US(params.HostIRQUS), "qpip.isr", fn)
	})
}

// failQP tears down a QP after a terminal connection failure: the TCB is
// unlinked, the timer cancelled, and — asynchronously, through the host
// notification path — every outstanding WR completes exactly once with
// status. That includes send WRs the firmware already consumed
// (qs.sendIDs, in flight or queued in the TCB) which a plain Flush would
// leak, violating the DESIGN §8 completion invariant.
func (n *NIC) failQP(qs *qpState, err error, status verbs.Status) {
	if qs.conn != nil {
		n.reapConn(qs)
	}
	if qs.timer != nil {
		qs.timer.Cancel()
		qs.timer = nil
	}
	ids := qs.sendIDs[qs.sendHead:]
	qs.sendIDs, qs.sendHead = nil, 0
	qs.stash, qs.stashHead = nil, 0
	qs.stashBytes = 0
	//lint:qpip-allow hotprop terminal failure teardown runs once per connection death, never on the steady-state path
	n.notifyHost(func() {
		for _, id := range ids {
			qs.qp.CompleteSend(id, status, 0)
		}
		qs.qp.SetFailed(err, status)
	})
}
