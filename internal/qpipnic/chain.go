package qpipnic

import (
	"repro/internal/buf"
	"repro/internal/fabric"
	"repro/internal/inet"
	"repro/internal/params"
	"repro/internal/pool"
	"repro/internal/sim"
	"repro/internal/tcp"
	"repro/internal/trace"
	"repro/internal/udp"
	"repro/internal/verbs"
	"repro/internal/wire"
)

// The firmware FSM stages used to be expressed as chains of closures: every
// packet allocated a step slice, one closure per stage, one continuation per
// engine event. This file replaces that with value-typed stage descriptors
// executed by a pooled runner (chainRun) whose continuation closures are
// bound once at construction — steady-state firmware processing allocates
// nothing. The stage sequence, per-stage costs, event names, and completion
// order are exactly those of the closure chains, so simulated traces are
// unchanged.

// Stage kinds. Most stages charge the firmware CPU a fixed cost; the
// special kinds carry the state that used to live in captured closure
// environments (the packet being built, the record being placed, ...).
const (
	stCPU          uint8 = iota // fixed-cost firmware CPU stage
	stDMA                       // CPU setup then cr.bytes across the PCI bus
	stChecksum                  // firmware checksum loop over cr.bytes (if enabled)
	stMedia                     // Send stage, then inject cr.pkt into the fabric
	stTxWR                      // take one posted send WR and hand to the transport
	stUDPDone                   // complete the UDP send WR
	stComplete                  // one acked-record completion; repeats cr.completions times
	stStash                     // place stashed records into posted receive WRs; repeats
	stStashTally                // count a remaining backlog after a drain
	stPlaceDone                 // DMA the receive completion token, post it
	stRxDispatch                // demux a parsed IP packet to TCP/UDP handling
	stRxTCPBody                 // TCB input processing for cr.seg
	stRxUDPBody                 // UDP delivery for cr.pkt
	stUpdateWindow              // re-advertise the receive window
	stCustom                    // escape hatch: fn(next), for rare paths
)

// step is one closure-form stage; it must call next exactly once. Only the
// rare connection-lifecycle stages still use this form.
type step func(next func())

// stage is one value-typed FSM stage. CPU/DMA/checksum stages resolve their
// occupancy accumulator (ctr) once, at adapter construction, so recording a
// stage does not touch the stage-name map.
type stage struct {
	kind    uint8
	name    string       // firmware CPU job name (the engine event name)
	dmaName string       // stDMA: bus transfer event name ("<name>.dma")
	ctr     *trace.Stage // occupancy accumulator
	us      float64      // fixed CPU cost in microseconds
	fn      step         // stCustom only
}

// chainRun executes a stage sequence. The continuation funcs are bound to
// the runner once; per-packet state lives in plain fields instead of
// closure environments. Runners recycle through a per-NIC free list (the
// engine is single-threaded, so no locking), gated by pool.Enabled like
// the rest of the datapath pools.
type chainRun struct {
	n       *NIC
	stages  [8]stage
	nStages int
	i       int
	done    func()

	// Per-chain operand state (union-style: each chain shape uses a few).
	qs          *qpState
	pkt         *wire.Packet
	ip6         inet.Header6
	seg         tcp.Segment
	epoch       uint32 // sender boot generation (rx chains)
	att         int
	bytes       int
	wrID        uint64
	completions int
	train       int // completions accumulated for one CQ-token writeback
	wr          verbs.RecvWR
	rec         buf.Buf
	raddr       inet.Addr6
	lport       uint16
	rport       uint16
	status      verbs.Status

	// Continuations, bound once.
	advanceFn       func() // re-enter run after an event
	dmaFn           func() // after DMA setup CPU: burst payload over the bus
	mediaFn         func() // after the Send stage: inject the frame
	completeFn      func() // after the Update stage: DMA the CQ token
	completeBurstFn func() // after the token lands: post the send completion
	placeBurstFn    func() // after the token lands: post the recv completion
}

func newChainRun(n *NIC) *chainRun {
	cr := &chainRun{n: n}
	cr.advanceFn = cr.run
	cr.dmaFn = func() {
		st := &cr.stages[cr.i-1]
		cr.n.cfg.Bus.BurstAt(cr.bytes, params.LANaiDMABandwidth, st.dmaName, cr.advanceFn)
	}
	cr.mediaFn = func() {
		n := cr.n
		frame := fabric.NewFrame(n.att, cr.att, cr.pkt.Len()+params.MyrinetHeaderBytes, cr.pkt)
		if n.cfg.PipelinedTX {
			n.fab.Send(frame, nil)
			cr.run()
		} else {
			n.fab.Send(frame, cr.advanceFn)
		}
	}
	cr.completeFn = func() {
		// One token writeback covers the whole completion train: 32 bytes
		// per CQ entry, a single bus burst.
		cr.n.cfg.Bus.Burst(32*cr.train, "cq.token", cr.completeBurstFn)
	}
	cr.completeBurstFn = func() {
		qs := cr.qs
		for ; cr.train > 0; cr.train-- {
			if id, ok := qs.popSendID(); ok {
				qs.qp.CompleteSend(id, verbs.StatusSuccess, 0)
			}
		}
		cr.run()
	}
	cr.placeBurstFn = func() {
		comp := verbs.Completion{
			WRID:       cr.wr.ID,
			Status:     cr.status,
			ByteLen:    cr.rec.Len(),
			Payload:    cr.rec,
			RemoteAddr: cr.raddr,
			RemotePort: cr.rport,
		}
		if cr.status == verbs.StatusLenError {
			comp.Payload = buf.Empty
			comp.ByteLen = 0
		}
		qs := cr.qs
		qs.qp.CompleteRecv(comp)
		cr.n.updateWindow(qs)
		cr.run()
	}
	return cr
}

// getChain hands out a runner with done set and all operand state cleared.
//
//qpip:hotpath
func (n *NIC) getChain(done func()) *chainRun {
	var cr *chainRun
	if k := len(n.chainFree); k > 0 && pool.Enabled() {
		cr = n.chainFree[k-1]
		n.chainFree[k-1] = nil
		n.chainFree = n.chainFree[:k-1]
	} else {
		//lint:qpip-allow hotprop pool-miss construction only; runners are recycled through chainFree, so the closures newChainRun binds amortize to zero per packet
		cr = newChainRun(n)
	}
	cr.done = done
	return cr
}

// putChain clears pointer-holding state and returns the runner to the free
// list. Stage entries past nStages are stale but only reachable through
// nStages, which every get resets.
//
//qpip:hotpath
func (n *NIC) putChain(cr *chainRun) {
	for j := 0; j < cr.nStages; j++ {
		cr.stages[j].fn = nil
	}
	cr.nStages, cr.i = 0, 0
	cr.done = nil
	cr.qs = nil
	cr.pkt = nil
	cr.seg = tcp.Segment{}
	cr.wr = verbs.RecvWR{}
	cr.rec = buf.Empty
	cr.completions = 0
	cr.train = 0
	if pool.Enabled() {
		n.chainFree = append(n.chainFree, cr)
	}
}

// push appends one stage.
//
//qpip:hotpath
func (cr *chainRun) push(st stage) {
	cr.stages[cr.nStages] = st
	cr.nStages++
}

// use copies a template stage sequence into the runner.
//
//qpip:hotpath
func (cr *chainRun) use(tpl []stage) {
	cr.nStages = copy(cr.stages[:], tpl)
}

// run executes stages until one schedules an event (each stage's
// continuation re-enters run), then frees the runner and calls done.
//
//qpip:hotpath
func (cr *chainRun) run() {
	for {
		if cr.i >= cr.nStages {
			n, done := cr.n, cr.done
			n.putChain(cr)
			if done != nil {
				done()
			}
			return
		}
		st := &cr.stages[cr.i]
		cr.i++
		switch st.kind {
		case stCPU:
			d := params.US(st.us)
			st.ctr.Observe(d)
			cr.n.cpu.Do(d, st.name, cr.advanceFn)
			return
		case stDMA:
			dma := sim.Time(float64(cr.bytes) * 1e9 / params.LANaiDMABandwidth)
			st.ctr.Observe(params.US(st.us) + dma)
			cr.n.cpu.Do(params.US(st.us), st.name, cr.dmaFn)
			return
		case stChecksum:
			if cr.n.cfg.Checksum != ChecksumFirmware {
				continue
			}
			d := params.NICCycles(params.FirmwareChecksumCyclesPerByte * float64(cr.bytes))
			st.ctr.Observe(d)
			cr.n.cpu.Do(d, "fw-checksum", cr.advanceFn)
			return
		case stMedia:
			d := params.US(params.TxSendUS)
			st.ctr.Observe(d)
			cr.n.cpu.Do(d, st.name, cr.mediaFn)
			return
		case stTxWR:
			// Hand off to the per-transport message path; the runner's job
			// ends here, so free it first (done transfers to the callee).
			n, qs, done := cr.n, cr.qs, cr.done
			wr, ok := qs.qp.TakeSendWR()
			if !ok {
				continue
			}
			cr.done = nil
			n.putChain(cr)
			if qs.conn != nil {
				n.sendTCPMessage(qs, wr, done)
			} else {
				n.sendUDPMessage(qs, wr, done)
			}
			return
		case stUDPDone:
			cr.qs.qp.CompleteSend(cr.wrID, verbs.StatusSuccess, cr.bytes)
			continue
		case stComplete:
			// Each acked record pays its Update stage; the CQ-token DMA
			// for the whole train is emitted once, after the last Update
			// (a completion train crosses the bus as one burst).
			cr.completions--
			cr.train++
			d := params.US(params.RxUpdateAckUS)
			cr.n.ctrRxAckUpdate.Observe(d)
			if cr.completions > 0 {
				cr.i-- // stay on this stage for the next completion
				cr.n.cpu.Do(d, "Update", cr.advanceFn)
			} else {
				cr.n.cpu.Do(d, "Update", cr.completeFn)
			}
			return
		case stStash:
			qs := cr.qs
			rec, ok := qs.peekStash()
			if !ok {
				continue
			}
			wr, ok := qs.qp.TakeRecvWR()
			if !ok {
				continue
			}
			qs.popStash()
			cr.i-- // stay: drain the next record after this one places
			cr.n.placeRecord(qs, wr, rec, qs.remoteAddr, qs.remotePort, cr.advanceFn)
			return
		case stStashTally:
			if cr.qs.stashLen() > 0 {
				// Receiver not ready: records wait in SRAM until the host
				// posts receive WRs (the QPIP analog of an RNR NAK — the
				// closed TCP window is the backoff). An SRQ-attached
				// connection additionally parks on the shared pool so the
				// next repost drains it.
				cr.n.stats.StashedRecords++
				cr.qs.rnr++
				cr.n.Net.Add("rx.rnr", 1)
				cr.n.enqueueSRQWaiter(cr.qs)
			}
			continue
		case stPlaceDone:
			cr.n.cfg.Bus.Burst(32, "cq.token", cr.placeBurstFn)
			return
		case stRxDispatch:
			if cr.rxDispatch() {
				continue
			}
			return
		case stRxTCPBody:
			cr.rxTCPBody()
			continue
		case stRxUDPBody:
			cr.rxUDPBody()
			continue
		case stUpdateWindow:
			cr.n.updateWindow(cr.qs)
			continue
		case stCustom:
			st.fn(cr.advanceFn)
			return
		}
	}
}

// rxDispatch demuxes a checksum-verified inbound packet: it extends the
// running chain with the transport parse stage and body. It reports true
// to keep the run loop going (all outcomes continue inline).
func (cr *chainRun) rxDispatch() bool {
	n, pkt := cr.n, cr.pkt
	switch cr.ip6.NextHeader {
	case inet.ProtoTCP:
		seg, _, err := tcp.ParseHeader(pkt.L4Hdr)
		if err != nil {
			n.stats.ChecksumErrors++
			n.Net.Add("rx.corrupt", 1)
			pkt.Release()
			cr.pkt = nil
			return true
		}
		seg.Payload = pkt.Payload
		cr.seg = seg
		var parse stage
		if pkt.Payload.Len() > 0 {
			n.stats.DataRecvs++
			parse = n.tplTCPParseData
		} else {
			n.stats.AckRecvs++
			parse = n.tplTCPParseAck
		}
		cr.stages[cr.i] = parse
		cr.stages[cr.i+1] = stage{kind: stRxTCPBody}
		cr.nStages = cr.i + 2
		return true
	case inet.ProtoUDP:
		h, plen, err := udp.Parse(pkt.L4Hdr)
		if err != nil || plen != pkt.Payload.Len() {
			n.stats.ChecksumErrors++
			n.Net.Add("rx.corrupt", 1)
			pkt.Release()
			cr.pkt = nil
			return true
		}
		n.stats.UDPRecvs++
		cr.lport, cr.rport = h.DstPort, h.SrcPort
		cr.stages[cr.i] = n.tplUDPParse
		cr.stages[cr.i+1] = stage{kind: stRxUDPBody}
		cr.nStages = cr.i + 2
		return true
	default:
		n.stats.NoPortDrops++
		n.Net.Add("rx.drop.no-port", 1)
		pkt.Release()
		cr.pkt = nil
		return true
	}
}

// rxTCPBody is the post-parse TCP receive path: verify the end-to-end
// checksum, demux to the TCB (or mate a SYN), and process the input.
func (cr *chainRun) rxTCPBody() {
	n, pkt := cr.n, cr.pkt
	cr.pkt = nil
	seg := cr.seg
	defer pkt.Release()
	if !n.verifyTransport(&cr.ip6, pkt) {
		n.stats.ChecksumErrors++
		n.Net.Add("rx.corrupt", 1)
		return
	}
	key := tcpKey{seg.DstPort, cr.ip6.Src, seg.SrcPort}
	qs := n.tcpConns[key]
	if qs == nil {
		// New connection? "the client ... initiates a connection to the
		// server that mates the connection to an idle QP in the server
		// application" (paper §3).
		if seg.Flags.Has(tcp.SYN) && !seg.Flags.Has(tcp.ACK) {
			ip6 := cr.ip6
			n.acceptSYN(&seg, &ip6, cr.epoch)
			return
		}
		if !seg.Flags.Has(tcp.RST) {
			// No TCB for an established-looking segment: the peer is
			// talking to a connection this adapter no longer knows (we
			// rebooted, or the QP was recycled). Refuse with an RST so the
			// peer fails fast instead of burning its retransmit budget.
			ip6 := cr.ip6
			n.Net.Add("rx.unknown-rst", 1)
			n.sendRST(&seg, ip6.Src)
			return
		}
		n.stats.NoPortDrops++
		n.Net.Add("rx.drop.no-port", 1)
		return
	}
	// Epoch fence (DESIGN §13): the connection is pinned to the sender
	// boot generation it was established under. Older frames are
	// pre-crash stragglers; a newer epoch proves the peer rebooted, so
	// the fenced TCB is dead.
	if cr.epoch != 0 {
		if qs.peerEpoch == 0 {
			qs.peerEpoch = cr.epoch
		} else if cr.epoch < qs.peerEpoch {
			qs.staleEpoch++
			n.Net.Add("rx.stale-epoch", 1)
			return
		} else if cr.epoch > qs.peerEpoch {
			n.Net.Add("rx.peer-reboot", 1)
			n.failQP(qs, verbs.ErrPeerRestarted, verbs.StatusRemoteError)
			if seg.Flags.Has(tcp.SYN) && !seg.Flags.Has(tcp.ACK) {
				// The rebooted peer is opening a fresh connection that
				// happens to reuse the old 4-tuple: mate it anew.
				ip6 := cr.ip6
				n.acceptSYN(&seg, &ip6, cr.epoch)
			}
			return
		}
	}
	now := int64(n.eng.Now())
	acts := qs.conn.Input(&seg, now)
	n.syncTimer(qs)
	n.handleActionsChain(qs, acts, nil)
}

// rxUDPBody verifies and delivers one datagram into a posted receive WR.
// Datagrams arriving with no posted WR are dropped — UDP QPs are
// unreliable by contract.
func (cr *chainRun) rxUDPBody() {
	n, pkt := cr.n, cr.pkt
	cr.pkt = nil
	defer pkt.Release()
	if udp.Verify6(cr.ip6.Src, cr.ip6.Dst, pkt.L4Hdr, pkt.Payload) != nil {
		n.stats.ChecksumErrors++
		n.Net.Add("rx.corrupt", 1)
		return
	}
	qs, ok := n.udpPorts.Lookup(cr.lport)
	if !ok {
		n.stats.NoPortDrops++
		n.Net.Add("rx.drop.no-port", 1)
		return
	}
	wr, ok := qs.qp.TakeRecvWR()
	if !ok {
		n.stats.NoWRDrops++
		n.Net.Add("rx.drop.no-wr", 1)
		return
	}
	n.placeRecord(qs, wr, pkt.Payload, cr.ip6.Src, cr.rport, nil)
}

// ---- Stage templates, resolved once per adapter. ----

// chainTemplates holds the constant stage sequences of the four FSM paths.
type chainTemplates struct {
	txWR            [4]stage // Doorbell Process, Schedule, Get WR, take-WR handoff
	txWRBatch       [3]stage // Schedule, Get WR, handoff (vectored-token tail)
	udpSend         [6]stage // Get Data, Build UDP Hdr, Build IP Hdr, Send, Update, complete
	segData         [7]stage // Doorbell Process, Schedule, Get Data, Build TCP Hdr, Build IP Hdr, Send, Update
	segAck          [6]stage // as segData without the payload DMA, on the ack column
	rxData          [4]stage // Media Rcv, IP Parse, checksum, dispatch
	rxAck           [4]stage // same, on the ack column
	place           [4]stage // Get WR, Put Data, Update, completion token
	tplTCPParseData stage
	tplTCPParseAck  stage
	tplUDPParse     stage
	ctrRxAckUpdate  *trace.Stage
}

func cpuSt(set *trace.Stages, name string, us float64) stage {
	return stage{kind: stCPU, name: name, ctr: set.Counter(name), us: us}
}

func dmaSt(set *trace.Stages, name string, us float64) stage {
	return stage{kind: stDMA, name: name, dmaName: name + ".dma", ctr: set.Counter(name), us: us}
}

func (n *NIC) initTemplates() {
	n.txWR = [4]stage{
		cpuSt(n.TxData, "Doorbell Process", params.TxDoorbellProcUS),
		cpuSt(n.TxData, "Schedule", params.TxScheduleUS),
		cpuSt(n.TxData, "Get WR", params.TxGetWRUS),
		{kind: stTxWR},
	}
	// The amortized tail of a vectored doorbell token: Doorbell Process
	// was paid once by the head WR, so the train's remaining WRs start at
	// Schedule.
	n.txWRBatch = [3]stage{
		cpuSt(n.TxData, "Schedule", params.TxScheduleUS),
		cpuSt(n.TxData, "Get WR", params.TxGetWRUS),
		{kind: stTxWR},
	}
	n.udpSend = [6]stage{
		dmaSt(n.TxData, "Get Data", params.TxGetDataUS),
		cpuSt(n.TxData, "Build UDP Hdr", params.TxBuildUDPHdrUS),
		cpuSt(n.TxData, "Build IP Hdr", params.TxBuildIPHdrUS),
		{kind: stMedia, name: "Send", ctr: n.TxData.Counter("Send")},
		cpuSt(n.TxData, "Update", params.TxUpdateUS),
		{kind: stUDPDone},
	}
	n.segData = [7]stage{
		cpuSt(n.TxData, "Doorbell Process", params.TxDoorbellProcUS),
		cpuSt(n.TxData, "Schedule", params.TxScheduleUS),
		dmaSt(n.TxData, "Get Data", params.TxGetDataUS),
		cpuSt(n.TxData, "Build TCP Hdr", params.TxBuildTCPHdrUS),
		cpuSt(n.TxData, "Build IP Hdr", params.TxBuildIPHdrUS),
		{kind: stMedia, name: "Send", ctr: n.TxData.Counter("Send")},
		cpuSt(n.TxData, "Update", params.TxUpdateUS),
	}
	n.segAck = [6]stage{
		cpuSt(n.TxAck, "Doorbell Process", params.TxDoorbellProcUS),
		cpuSt(n.TxAck, "Schedule", params.TxScheduleUS),
		cpuSt(n.TxAck, "Build TCP Hdr", params.TxBuildTCPHdrUS),
		cpuSt(n.TxAck, "Build IP Hdr", params.TxBuildIPHdrUS),
		{kind: stMedia, name: "Send", ctr: n.TxAck.Counter("Send")},
		cpuSt(n.TxAck, "Update", params.TxUpdateUS),
	}
	n.rxData = [4]stage{
		cpuSt(n.RxData, "Media Rcv", params.RxMediaRcvUS),
		cpuSt(n.RxData, "IP Parse", params.RxIPParseUS),
		{kind: stChecksum, ctr: n.RxData.Counter("Checksum (fw)")},
		{kind: stRxDispatch},
	}
	n.rxAck = [4]stage{
		cpuSt(n.RxAck, "Media Rcv", params.RxMediaRcvUS),
		cpuSt(n.RxAck, "IP Parse", params.RxIPParseUS),
		{kind: stChecksum, ctr: n.RxAck.Counter("Checksum (fw)")},
		{kind: stRxDispatch},
	}
	n.place = [4]stage{
		cpuSt(n.RxData, "Get WR", params.RxGetWRUS),
		dmaSt(n.RxData, "Put Data", params.RxPutDataUS),
		cpuSt(n.RxData, "Update", params.RxUpdateDataUS),
		{kind: stPlaceDone},
	}
	n.tplTCPParseData = cpuSt(n.RxData, "TCP Parse", params.RxTCPParseDataUS)
	n.tplTCPParseAck = cpuSt(n.RxAck, "TCP Parse", params.RxTCPParseAckUS)
	n.tplUDPParse = cpuSt(n.RxData, "UDP Parse", params.RxUDPParseUS)
	n.ctrRxAckUpdate = n.RxAck.Counter("Update")
}
