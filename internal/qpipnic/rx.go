package qpipnic

import (
	"repro/internal/fabric"
	"repro/internal/inet"
	"repro/internal/tcp"
	"repro/internal/udp"
	"repro/internal/wire"

	"repro/internal/params"
)

// This file is the receive FSM (paper §3.1, Figure 2 right): media
// receive, IP parse, TCP/UDP parse (with the expensive ACK path — the RTT
// estimator multiplies run in software on the LANai), then Get WR / Put
// Data / Update for delivered messages. "A pure TCP acknowledgement is
// simply a special case of a regular data receive operation, except that
// no data is delivered to the application" (paper §3.1).

// receiveFrame is the fabric delivery handler.
func (n *NIC) receiveFrame(f *fabric.Frame) {
	pkt, ok := f.Payload.(*wire.Packet)
	if !ok || pkt.IsV4 {
		return // not for this stack
	}
	ip6, err := inet.Parse6(pkt.IPHdr)
	if err != nil {
		n.stats.ChecksumErrors++
		n.Net.Add("rx.corrupt", 1)
		return
	}
	l4len := len(pkt.L4Hdr) + pkt.Payload.Len()
	isData := pkt.Payload.Len() > 0
	set := n.RxData
	if ip6.NextHeader == inet.ProtoTCP && !isData {
		set = n.RxAck
	}
	chain([]step{
		n.cpuStage(set, "Media Rcv", params.RxMediaRcvUS),
		n.cpuStage(set, "IP Parse", params.RxIPParseUS),
		n.checksumStage(set, l4len),
	}, func() {
		switch ip6.NextHeader {
		case inet.ProtoTCP:
			n.receiveTCP(&ip6, pkt)
		case inet.ProtoUDP:
			n.receiveUDP(&ip6, pkt)
		default:
			n.stats.NoPortDrops++
			n.Net.Add("rx.drop.no-port", 1)
		}
	})
}

// verifyTransport checks the real end-to-end checksum. The verification
// itself is hardware-assisted or already charged by checksumStage; here
// only correctness is at stake.
func (n *NIC) verifyTransport(ip6 *inet.Header6, pkt *wire.Packet) bool {
	sum := inet.PseudoSum6(ip6.Src, ip6.Dst, ip6.NextHeader, len(pkt.L4Hdr)+pkt.Payload.Len())
	sum = inet.Sum(sum, pkt.L4Hdr)
	sum = inet.SumBuf(sum, pkt.Payload)
	return inet.Fold(sum) == 0xffff
}

// receiveTCP runs TCP Parse and the TCB input processing.
func (n *NIC) receiveTCP(ip6 *inet.Header6, pkt *wire.Packet) {
	seg, _, err := tcp.ParseHeader(pkt.L4Hdr)
	if err != nil {
		n.stats.ChecksumErrors++
		n.Net.Add("rx.corrupt", 1)
		return
	}
	seg.Payload = pkt.Payload
	isData := pkt.Payload.Len() > 0
	set, cost := n.RxAck, params.RxTCPParseAckUS
	if isData {
		set, cost = n.RxData, params.RxTCPParseDataUS
		n.stats.DataRecvs++
	} else {
		n.stats.AckRecvs++
	}
	chain([]step{n.cpuStage(set, "TCP Parse", cost)}, func() {
		if !n.verifyTransport(ip6, pkt) {
			n.stats.ChecksumErrors++
			n.Net.Add("rx.corrupt", 1)
			return
		}
		key := tcpKey{seg.DstPort, ip6.Src, seg.SrcPort}
		qs := n.tcpConns[key]
		if qs == nil {
			// New connection? "the client ... initiates a connection to
			// the server that mates the connection to an idle QP in the
			// server application" (paper §3).
			if seg.Flags.Has(tcp.SYN) && !seg.Flags.Has(tcp.ACK) {
				n.acceptSYN(&seg, ip6)
				return
			}
			n.stats.NoPortDrops++
			n.Net.Add("rx.drop.no-port", 1)
			return
		}
		now := int64(n.eng.Now())
		acts := qs.conn.Input(&seg, now)
		n.syncTimer(qs)
		n.handleActionsChain(qs, acts, nil)
	})
}

// acceptSYN mates an incoming connection to an idle QP on the listener.
func (n *NIC) acceptSYN(seg *tcp.Segment, ip6 *inet.Header6) {
	l := n.listeners[seg.DstPort]
	if l == nil {
		// Nothing listens here: refuse explicitly with an RST so the
		// client fails fast (ErrConnRefused) instead of burning its SYN
		// retry budget against a silent drop.
		n.stats.NoPortDrops++
		n.Net.Add("conn.refused", 1)
		n.sendRST(seg, ip6.Src)
		return
	}
	att, err := n.cfg.Routes.Lookup(ip6.Src)
	if err != nil {
		n.stats.NoRouteDrops++
		n.Net.Add("rx.drop.no-route", 1)
		return
	}
	qp, ok := l.TakeIdle()
	if !ok {
		// No idle QP parked: drop; the client's SYN retransmit retries —
		// a later Listener.Post may still mate the connection.
		n.stats.NoPortDrops++
		n.Net.Add("accept.no-idle-qp", 1)
		return
	}
	qs := n.qps[qp.QPN]
	qs.localPort = seg.DstPort
	qs.remoteAddr, qs.remotePort, qs.remoteAtt = ip6.Src, seg.SrcPort, att
	qs.conn = tcp.NewConn(n.connConfig(seg.DstPort, seg.SrcPort))
	// Receive WRs may already be posted on the parked QP.
	qs.conn.SetRecvWindow(qp.PostedRecvBytes(), int64(n.eng.Now()))
	n.tcpConns[tcpKey{seg.DstPort, ip6.Src, seg.SrcPort}] = qs
	now := int64(n.eng.Now())
	acts, err := qs.conn.AcceptSYN(seg, now)
	if err != nil {
		return
	}
	n.syncTimer(qs)
	n.handleActionsChain(qs, acts, nil)
}

// sendRST emits a connection-refusal RST in response to seg from src.
// There is no TCB for this exchange; a transient endpoint record carries
// the routing fields the transmit path needs.
func (n *NIC) sendRST(seg *tcp.Segment, src inet.Addr6) {
	att, err := n.cfg.Routes.Lookup(src)
	if err != nil {
		return
	}
	rst := &tcp.Segment{
		SrcPort: seg.DstPort,
		DstPort: seg.SrcPort,
		Flags:   tcp.RST | tcp.ACK,
		Ack:     seg.Seq.Add(1),
		WScale:  -1,
	}
	tmp := &qpState{localPort: seg.DstPort, remoteAddr: src, remotePort: seg.SrcPort, remoteAtt: att}
	n.enqueueTx(txWork{qs: tmp, seg: rst})
}

// receiveUDP parses and delivers one datagram. Datagrams arriving with no
// posted receive WR are dropped — UDP QPs are unreliable by contract.
func (n *NIC) receiveUDP(ip6 *inet.Header6, pkt *wire.Packet) {
	h, plen, err := udp.Parse(pkt.L4Hdr)
	if err != nil || plen != pkt.Payload.Len() {
		n.stats.ChecksumErrors++
		n.Net.Add("rx.corrupt", 1)
		return
	}
	n.stats.UDPRecvs++
	chain([]step{n.cpuStage(n.RxData, "UDP Parse", params.RxUDPParseUS)}, func() {
		if udp.Verify6(ip6.Src, ip6.Dst, pkt.L4Hdr, pkt.Payload) != nil {
			n.stats.ChecksumErrors++
			n.Net.Add("rx.corrupt", 1)
			return
		}
		qs, ok := n.udpPorts.Lookup(h.DstPort)
		if !ok {
			n.stats.NoPortDrops++
			n.Net.Add("rx.drop.no-port", 1)
			return
		}
		wr, ok := qs.qp.TakeRecvWR()
		if !ok {
			n.stats.NoWRDrops++
			n.Net.Add("rx.drop.no-wr", 1)
			return
		}
		n.placeRecord(qs, wr, pkt.Payload, ip6.Src, h.SrcPort, nil)
	})
}
