package qpipnic

import (
	"repro/internal/fabric"
	"repro/internal/inet"
	"repro/internal/pool"
	"repro/internal/tcp"
	"repro/internal/wire"
)

// This file is the receive FSM (paper §3.1, Figure 2 right): media
// receive, IP parse, TCP/UDP parse (with the expensive ACK path — the RTT
// estimator multiplies run in software on the LANai), then Get WR / Put
// Data / Update for delivered messages. "A pure TCP acknowledgement is
// simply a special case of a regular data receive operation, except that
// no data is delivered to the application" (paper §3.1). The stage
// sequences themselves run on the pooled chain runners (chain.go): Media
// Rcv / IP Parse / checksum, then an in-runner dispatch to the transport
// parse stage and body.

// receiveFrame is the fabric delivery handler.
func (n *NIC) receiveFrame(f *fabric.Frame) {
	if cm, ok := f.Payload.(*collMsg); ok {
		// Collective messages bypass the inter-network stack: the
		// collective engine demultiplexes on (group, seq) directly.
		if !n.down {
			n.receiveColl(cm)
		}
		return
	}
	pkt, ok := f.Payload.(*wire.Packet)
	if !ok {
		return // not for this stack
	}
	if n.down {
		// A crashed adapter is deaf: the frame dies at the media interface.
		pkt.Release()
		return
	}
	if pkt.IsV4 {
		pkt.Release()
		return // not for this stack
	}
	ip6, err := inet.Parse6(pkt.IPHdr)
	if err != nil {
		n.stats.ChecksumErrors++
		n.Net.Add("rx.corrupt", 1)
		pkt.Release()
		return
	}
	tpl := n.rxData[:]
	if ip6.NextHeader == inet.ProtoTCP && pkt.Payload.Len() == 0 {
		tpl = n.rxAck[:]
	}
	cr := n.getChain(nil)
	cr.use(tpl)
	cr.pkt = pkt
	cr.ip6 = ip6
	cr.epoch = pkt.Epoch
	cr.bytes = len(pkt.L4Hdr) + pkt.Payload.Len()
	cr.run()
}

// verifyTransport checks the real end-to-end checksum. The verification
// itself is hardware-assisted or already charged by the checksum stage;
// here only correctness is at stake.
func (n *NIC) verifyTransport(ip6 *inet.Header6, pkt *wire.Packet) bool {
	sum := inet.PseudoSum6(ip6.Src, ip6.Dst, ip6.NextHeader, len(pkt.L4Hdr)+pkt.Payload.Len())
	sum = inet.Sum(sum, pkt.L4Hdr)
	sum = inet.SumBuf(sum, pkt.Payload)
	return inet.Fold(sum) == 0xffff
}

// acceptSYN mates an incoming connection to an idle QP on the listener.
// epoch is the client adapter's boot generation carried by the SYN; the
// new connection is fenced to it.
func (n *NIC) acceptSYN(seg *tcp.Segment, ip6 *inet.Header6, epoch uint32) {
	l := n.listeners[seg.DstPort]
	if l == nil {
		// Nothing listens here: refuse explicitly with an RST so the
		// client fails fast (ErrConnRefused) instead of burning its SYN
		// retry budget against a silent drop.
		n.stats.NoPortDrops++
		n.Net.Add("conn.refused", 1)
		n.sendRST(seg, ip6.Src)
		return
	}
	att, err := n.cfg.Routes.Lookup(ip6.Src)
	if err != nil {
		n.stats.NoRouteDrops++
		n.Net.Add("rx.drop.no-route", 1)
		return
	}
	qp, ok := l.TakeIdle()
	if !ok {
		// No idle QP parked: drop; the client's SYN retransmit retries —
		// a later Listener.Post may still mate the connection.
		n.stats.NoPortDrops++
		n.Net.Add("accept.no-idle-qp", 1)
		return
	}
	qs := n.qps.get(qp.QPN)
	qs.localPort = seg.DstPort
	qs.remoteAddr, qs.remotePort, qs.remoteAtt = ip6.Src, seg.SrcPort, att
	qs.peerEpoch = epoch
	qs.conn = tcp.NewConn(n.connConfig(seg.DstPort, seg.SrcPort))
	// The firmware consumes every Actions before re-entering the TCB, so
	// the action slices can live in per-conn reusable buffers.
	qs.conn.ReuseActionBuffers(pool.Enabled())
	// Receive WRs may already be posted on the parked QP.
	qs.conn.SetRecvWindow(qp.PostedRecvBytes(), int64(n.eng.Now()))
	n.tcpConns[tcpKey{seg.DstPort, ip6.Src, seg.SrcPort}] = qs
	now := int64(n.eng.Now())
	acts, err := qs.conn.AcceptSYN(seg, now)
	if err != nil {
		return
	}
	n.syncTimer(qs)
	n.handleActionsChain(qs, acts, nil)
}

// sendRST emits a connection-refusal RST in response to seg from src.
// There is no TCB for this exchange; a transient endpoint record carries
// the routing fields the transmit path needs.
func (n *NIC) sendRST(seg *tcp.Segment, src inet.Addr6) {
	att, err := n.cfg.Routes.Lookup(src)
	if err != nil {
		return
	}
	rst := &tcp.Segment{
		SrcPort: seg.DstPort,
		DstPort: seg.SrcPort,
		Flags:   tcp.RST | tcp.ACK,
		Ack:     seg.Seq.Add(1),
		WScale:  -1,
	}
	tmp := &qpState{localPort: seg.DstPort, remoteAddr: src, remotePort: seg.SrcPort, remoteAtt: att}
	n.enqueueTx(txWork{qs: tmp, seg: rst})
}
