package qpipnic

import (
	"repro/internal/verbs"
)

// srqState is the adapter-side view of one shared receive queue: a FIFO
// of connections stalled waiting for shared buffers. The WR pool itself
// is host-resident (it survives an adapter crash like every host-memory
// queue); the adapter only tracks who to wake when the host reposts.
//
// A connection parks here in two cases, both dup-idempotent via the
// qpState.srqWait flag: it holds stashed in-order records the pool could
// not buffer (the RNR case), or it advertised a zero receive window off
// an empty pool (the peer is now probing, and only a repost can reopen
// the window). One SRQPosted notification drains the waiters parked at
// notification time in FIFO order; connections the drain re-starves
// re-park and wait for the next repost, so a starved pool converges
// instead of spinning.
type srqState struct {
	srq      *verbs.SRQ
	waiters  []*qpState
	waitHead int
	// drainFn is pre-bound so the notification PIO path never allocates.
	drainFn func()
}

// srqFor resolves (or registers) the adapter-side state of an SRQ.
// Adapters hold a handful of SRQs; the attach-order scan keeps
// registration deterministic without a map.
func (n *NIC) srqFor(srq *verbs.SRQ) *srqState {
	for _, ss := range n.srqs {
		if ss.srq == srq {
			return ss
		}
	}
	ss := &srqState{srq: srq}
	//lint:qpip-allow hotprop drainFn is bound once per SRQ at first registration; subsequent posts hit the lookup loop above
	ss.drainFn = func() { n.drainSRQ(ss) }
	n.srqs = append(n.srqs, ss)
	return ss
}

// SRQPosted implements verbs.Device: the host posted count WRs to a
// shared pool. One notification write crosses the bus regardless of batch
// size; the firmware wakes the connections parked on the pool.
func (n *NIC) SRQPosted(srq *verbs.SRQ, count int) {
	ss := n.srqFor(srq)
	n.cfg.Bus.PIOWrite("recv-doorbell", ss.drainFn)
}

// enqueueSRQWaiter parks a connection on its shared pool. Idempotent per
// connection: a second stall before the drain is absorbed by the flag, so
// duplicate RNR events (retransmitted data, repeated window probes) never
// double-queue.
//
//qpip:hotpath
func (n *NIC) enqueueSRQWaiter(qs *qpState) {
	if qs.srqs == nil || qs.srqWait {
		return
	}
	qs.srqWait = true
	qs.srqs.waiters = append(qs.srqs.waiters, qs)
}

// drainSRQ wakes the connections parked on a pool, in park order. Only
// waiters present when the repost landed are drained — a connection the
// drain re-starves re-parks behind the cut and waits for the next repost.
// Crash-flush safety: a crash wipes the adapter-side waiter list with the
// rest of SRAM, and each drained entry is liveness-checked against the
// state table, so a stale notification after crash/restart touches
// nothing.
//
//qpip:hotpath
func (n *NIC) drainSRQ(ss *srqState) {
	end := len(ss.waiters)
	for ss.waitHead < end {
		qs := ss.waiters[ss.waitHead]
		ss.waiters[ss.waitHead] = nil
		ss.waitHead++
		qs.srqWait = false
		if n.qps.get(qs.qp.QPN) != qs {
			continue // destroyed or crashed while parked
		}
		n.drainStashAndUpdate(qs)
	}
	if ss.waitHead == len(ss.waiters) {
		ss.waiters, ss.waitHead = ss.waiters[:0], 0
	}
}

// crashSRQs wipes the adapter-side SRQ bookkeeping (waiter lists). The
// host-resident pools and their posted WRs survive, exactly like private
// host-memory queues: after restart and QP re-admission, arriving records
// claim from the same pool.
func (n *NIC) crashSRQs() {
	for _, ss := range n.srqs {
		for i := range ss.waiters {
			ss.waiters[i] = nil
		}
		ss.waiters, ss.waitHead = nil, 0
	}
	n.srqs = nil
}
