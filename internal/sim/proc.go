package sim

import "fmt"

// Proc is a simulated process: application code written in blocking style
// (post a work request, wait for a completion) that interleaves
// deterministically with the event engine. Exactly one goroutine — the
// engine's or one process's — runs at a time; control transfers are
// synchronous handshakes, so simulations stay reproducible.
//
// A single unbuffered baton channel carries both directions of the
// handshake: the side yielding control sends, the side waiting to run
// receives, in strict alternation. One channel halves the channel traffic
// of the old resume/parked pair on the hot park/wake path.
type Proc struct {
	eng   *Engine
	name  string
	baton chan struct{}
	dead  bool

	// Precomputed event names, so Sleep/Use in a poll loop don't
	// concatenate strings per call.
	sleepName, useName string

	// wakeFn is the one Wake closure, bound at spawn, so Sleep and Use
	// don't allocate a fresh closure per park.
	wakeFn func()
}

// Spawn starts fn as a simulated process at the current time. fn runs until
// it parks (Suspend, Sleep, Use) or returns; the engine then proceeds.
func (e *Engine) Spawn(name string, fn func(*Proc)) *Proc {
	p := &Proc{
		eng:       e,
		name:      name,
		baton:     make(chan struct{}),
		sleepName: name + ".sleep",
		useName:   name + ".use",
	}
	p.wakeFn = func() { p.Wake() }
	e.After(0, "spawn:"+name, func() {
		// The goroutine IS the coroutine mechanism: exactly one runs at a
		// time, handing off through the baton channel, so the engine stays
		// logically single-threaded (DESIGN §4).
		//lint:qpip-allow nogoroutine coroutine carrier with strict baton handoff
		go func() {
			fn(p)
			p.dead = true
			p.baton <- struct{}{}
		}()
		<-p.baton
	})
	return p
}

// Name reports the process name.
func (p *Proc) Name() string { return p.name }

// Done reports whether the process function has returned.
func (p *Proc) Done() bool { return p.dead }

// park transfers control back to the engine until Wake.
func (p *Proc) park() {
	p.baton <- struct{}{}
	<-p.baton
}

// Wake resumes a parked process and blocks (the engine) until it parks
// again or finishes. It must be called from engine context (an event
// callback), never from another process directly.
func (p *Proc) Wake() {
	if p.dead {
		panic(fmt.Sprintf("sim: Wake on finished process %q", p.name))
	}
	p.baton <- struct{}{}
	<-p.baton
}

// Suspend parks until some event calls Wake.
func (p *Proc) Suspend() { p.park() }

// Sleep parks for d of simulated time.
func (p *Proc) Sleep(d Time) {
	p.eng.After(d, p.sleepName, p.wakeFn)
	p.park()
}

// Use occupies a server (a CPU, typically) for d and parks until the work
// completes — modeling synchronous computation by this process.
func (p *Proc) Use(s *Server, d Time) {
	s.Do(d, p.useName, p.wakeFn)
	p.park()
}

// UseCycles occupies a CPU for the given cycle count.
func (p *Proc) UseCycles(c *CPU, cycles float64) {
	p.Use(c.Server, c.CycleTime(cycles))
}

// Now reports the engine clock.
func (p *Proc) Now() Time { return p.eng.Now() }

// Engine returns the owning engine.
func (p *Proc) Engine() *Engine { return p.eng }
