package sim

import "fmt"

// Proc is a simulated process: application code written in blocking style
// (post a work request, wait for a completion) that interleaves
// deterministically with the event engine. Exactly one goroutine — the
// engine's or one process's — runs at a time; control transfers are
// synchronous handshakes, so simulations stay reproducible.
type Proc struct {
	eng    *Engine
	name   string
	resume chan struct{}
	parked chan struct{}
	dead   bool
}

// Spawn starts fn as a simulated process at the current time. fn runs until
// it parks (Suspend, Sleep, Use) or returns; the engine then proceeds.
func (e *Engine) Spawn(name string, fn func(*Proc)) *Proc {
	p := &Proc{
		eng:    e,
		name:   name,
		resume: make(chan struct{}),
		parked: make(chan struct{}),
	}
	e.After(0, "spawn:"+name, func() {
		go func() {
			fn(p)
			p.dead = true
			p.parked <- struct{}{}
		}()
		<-p.parked
	})
	return p
}

// Name reports the process name.
func (p *Proc) Name() string { return p.name }

// Done reports whether the process function has returned.
func (p *Proc) Done() bool { return p.dead }

// park transfers control back to the engine until Wake.
func (p *Proc) park() {
	p.parked <- struct{}{}
	<-p.resume
}

// Wake resumes a parked process and blocks (the engine) until it parks
// again or finishes. It must be called from engine context (an event
// callback), never from another process directly.
func (p *Proc) Wake() {
	if p.dead {
		panic(fmt.Sprintf("sim: Wake on finished process %q", p.name))
	}
	p.resume <- struct{}{}
	<-p.parked
}

// Suspend parks until some event calls Wake.
func (p *Proc) Suspend() { p.park() }

// Sleep parks for d of simulated time.
func (p *Proc) Sleep(d Time) {
	p.eng.After(d, p.name+".sleep", func() { p.Wake() })
	p.park()
}

// Use occupies a server (a CPU, typically) for d and parks until the work
// completes — modeling synchronous computation by this process.
func (p *Proc) Use(s *Server, d Time) {
	s.Do(d, p.name+".use", func() { p.Wake() })
	p.park()
}

// UseCycles occupies a CPU for the given cycle count.
func (p *Proc) UseCycles(c *CPU, cycles float64) {
	p.Use(c.Server, c.CycleTime(cycles))
}

// Now reports the engine clock.
func (p *Proc) Now() Time { return p.eng.Now() }

// Engine returns the owning engine.
func (p *Proc) Engine() *Engine { return p.eng }
