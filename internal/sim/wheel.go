package sim

import "math/bits"

// Four-level hierarchical timer wheel, the engine's default queue.
//
// Ticks are one nanosecond — the engine's native resolution — so a level-0
// slot holds events for exactly one timestamp and a FIFO slot list is
// automatically in (at, seq) order: no sorting happens anywhere. Each level
// has 256 slots; level L buckets bits [8L, 8L+8) of the timestamp, giving a
// horizon of 2^32 ns (~4.3 s) past the cursor. The rare timer beyond that
// (TIME_WAIT, fully backed-off retransmits) parks in an overflow slice in
// scheduling order and is redistributed when the cursor reaches its window.
//
// Invariant: every resident event's timestamp t satisfies t >= cur, and t
// lives at the lowest level whose window contains both t and cur (events
// sharing cur's 256ns window are in level 0, and so on). Inserts place by
// window, and the cursor only enters a new window through cascade (which
// re-files that window's events first), so a slot is always fully populated
// before the level-0 scan can reach it. Occupancy bitmaps make the scans a
// handful of word tests.
type wheel struct {
	cur      uint64
	slots    [4][256]wslot
	occupied [4][4]uint64
	overflow []*Event
}

// wslot is a doubly-linked FIFO of events, linked through Event.next/prev.
type wslot struct{ head, tail *Event }

// insert files an event at the lowest level whose window contains both the
// event and the cursor, or into overflow past the horizon. Callers ensure
// ev.at >= cur (the engine's due buffer absorbs anything earlier).
func (w *wheel) insert(ev *Event) {
	t := uint64(ev.at)
	switch {
	case t>>8 == w.cur>>8:
		w.link(0, uint8(t), ev)
	case t>>16 == w.cur>>16:
		w.link(1, uint8(t>>8), ev)
	case t>>24 == w.cur>>24:
		w.link(2, uint8(t>>16), ev)
	case t>>32 == w.cur>>32:
		w.link(3, uint8(t>>24), ev)
	default:
		ev.state = evOverflow
		w.overflow = append(w.overflow, ev)
	}
}

func (w *wheel) link(level int8, slot uint8, ev *Event) {
	ev.state = evWheel
	ev.level, ev.slot = level, slot
	s := &w.slots[level][slot]
	ev.prev, ev.next = s.tail, nil
	if s.tail != nil {
		s.tail.next = ev
	} else {
		s.head = ev
		w.occupied[level][slot>>6] |= 1 << (slot & 63)
	}
	s.tail = ev
}

// unlink removes a (cancelled) event from its slot in O(1).
func (w *wheel) unlink(ev *Event) {
	s := &w.slots[ev.level][ev.slot]
	if ev.prev != nil {
		ev.prev.next = ev.next
	} else {
		s.head = ev.next
	}
	if ev.next != nil {
		ev.next.prev = ev.prev
	} else {
		s.tail = ev.prev
	}
	if s.head == nil {
		w.occupied[ev.level][ev.slot>>6] &^= 1 << (ev.slot & 63)
	}
	ev.next, ev.prev = nil, nil
}

// firstFrom returns the smallest occupied slot index >= from at the given
// level, or -1 when the rest of the level is empty.
func (w *wheel) firstFrom(level, from int) int {
	if from > 255 {
		return -1
	}
	word := from >> 6
	mask := w.occupied[level][word] &^ (1<<(uint(from)&63) - 1)
	for {
		if mask != 0 {
			return word<<6 + bits.TrailingZeros64(mask)
		}
		word++
		if word == 4 {
			return -1
		}
		mask = w.occupied[level][word]
	}
}

// takeSlot detaches and returns a slot's list head, emptying the slot.
func (w *wheel) takeSlot(level int8, slot uint8) *Event {
	s := &w.slots[level][slot]
	head := s.head
	s.head, s.tail = nil, nil
	w.occupied[level][slot>>6] &^= 1 << (slot & 63)
	return head
}

// pullNext advances the cursor to the next occupied timestamp and drains
// that slot — all events sharing one timestamp, in scheduling order — into
// the engine's due buffer. It reports false when the wheel is empty.
func (w *wheel) pullNext(e *Engine) bool {
	for {
		if s := w.firstFrom(0, int(w.cur&255)); s >= 0 {
			w.cur = w.cur&^255 | uint64(s)
			for ev := w.takeSlot(0, uint8(s)); ev != nil; {
				next := ev.next
				ev.next, ev.prev = nil, nil
				ev.state = evDue
				e.due = append(e.due, ev)
				ev = next
			}
			return true
		}
		// Level 0 exhausted: enter the next occupied higher-level window
		// (current higher-level slots are empty by the placement invariant)
		// and cascade it down, then rescan.
		if s := w.firstFrom(1, int(w.cur>>8&255)+1); s >= 0 {
			w.cur = w.cur>>16<<16 | uint64(s)<<8
			w.cascade(1, uint8(s))
			continue
		}
		if s := w.firstFrom(2, int(w.cur>>16&255)+1); s >= 0 {
			w.cur = w.cur>>24<<24 | uint64(s)<<16
			w.cascade(2, uint8(s))
			continue
		}
		if s := w.firstFrom(3, int(w.cur>>24&255)+1); s >= 0 {
			w.cur = w.cur>>32<<32 | uint64(s)<<24
			w.cascade(3, uint8(s))
			continue
		}
		if !w.refillFromOverflow(e) {
			return false
		}
	}
}

// cascade re-files a higher-level slot's events after the cursor entered the
// slot's window. FIFO order is preserved, so equal-timestamp events keep
// their scheduling order all the way down to level 0.
func (w *wheel) cascade(level int8, slot uint8) {
	for ev := w.takeSlot(level, slot); ev != nil; {
		next := ev.next
		ev.next, ev.prev = nil, nil
		w.insert(ev)
		ev = next
	}
}

// refillFromOverflow jumps the cursor to the earliest overflow timestamp and
// moves every overflow event inside the cursor's new top-level window into
// the wheel. Setting the cursor to the minimum timestamp itself (rather
// than a window base) keeps all re-filed events at scannable slot indexes.
// Cancelled stragglers are reaped here; slice order (= scheduling order) is
// preserved for the rest.
func (w *wheel) refillFromOverflow(e *Engine) bool {
	live := w.overflow[:0]
	var min uint64
	found := false
	for _, ev := range w.overflow {
		if ev.state == evCanceled {
			e.recycle(ev)
			continue
		}
		live = append(live, ev)
		if t := uint64(ev.at); !found || t < min {
			min, found = t, true
		}
	}
	for i := len(live); i < len(w.overflow); i++ {
		w.overflow[i] = nil
	}
	w.overflow = live
	if !found {
		return false
	}
	w.cur = min
	keep := w.overflow[:0]
	for _, ev := range w.overflow {
		if uint64(ev.at)>>32 == w.cur>>32 {
			w.insert(ev)
		} else {
			keep = append(keep, ev)
		}
	}
	for i := len(keep); i < len(w.overflow); i++ {
		w.overflow[i] = nil
	}
	w.overflow = keep
	return true
}
