// Package sim provides a deterministic discrete-event simulation engine.
//
// All QPIP hardware models (NIC processors, DMA engines, links, host CPUs)
// are built on this engine. Real protocol code runs inside event callbacks;
// only time is simulated. The engine is single-threaded and fully
// deterministic: events fire in non-decreasing timestamp order, with ties
// broken by scheduling order.
package sim

import (
	"container/heap"
	"fmt"
)

// Time is a simulated timestamp in nanoseconds since the start of the run.
type Time int64

// Common durations.
const (
	Nanosecond  Time = 1
	Microsecond Time = 1000
	Millisecond Time = 1000 * 1000
	Second      Time = 1000 * 1000 * 1000
)

// Micros reports t as a floating-point number of microseconds.
func (t Time) Micros() float64 { return float64(t) / 1e3 }

// Millis reports t as a floating-point number of milliseconds.
func (t Time) Millis() float64 { return float64(t) / 1e6 }

// Seconds reports t as a floating-point number of seconds.
func (t Time) Seconds() float64 { return float64(t) / 1e9 }

func (t Time) String() string {
	switch {
	case t >= Second:
		return fmt.Sprintf("%.6fs", t.Seconds())
	case t >= Millisecond:
		return fmt.Sprintf("%.3fms", t.Millis())
	case t >= Microsecond:
		return fmt.Sprintf("%.3fus", t.Micros())
	default:
		return fmt.Sprintf("%dns", int64(t))
	}
}

// Micros converts a floating-point number of microseconds to a Time.
func Micros(us float64) Time { return Time(us * 1e3) }

// Event is a scheduled callback. It may be cancelled before it fires.
type Event struct {
	at       Time
	seq      uint64
	index    int // heap index, -1 once popped or cancelled
	fn       func()
	name     string
	canceled bool
}

// At reports the time the event is scheduled to fire.
func (ev *Event) At() Time { return ev.at }

// Canceled reports whether Cancel was called before the event fired.
func (ev *Event) Canceled() bool { return ev.canceled }

// Cancel prevents the event's callback from running. Cancelling an event
// that already fired or was already cancelled is a no-op.
func (ev *Event) Cancel() { ev.canceled = true }

type eventHeap []*Event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}
func (h *eventHeap) Push(x any) {
	ev := x.(*Event)
	ev.index = len(*h)
	*h = append(*h, ev)
}
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	ev.index = -1
	*h = old[:n-1]
	return ev
}

// Engine is a discrete-event simulation kernel.
//
// The zero value is not usable; create engines with NewEngine.
type Engine struct {
	now     Time
	seq     uint64
	queue   eventHeap
	fired   uint64
	stopped bool
}

// NewEngine returns an engine with the clock at zero and an empty queue.
func NewEngine() *Engine {
	return &Engine{}
}

// Now reports the current simulated time.
func (e *Engine) Now() Time { return e.now }

// Fired reports the number of events executed so far.
func (e *Engine) Fired() uint64 { return e.fired }

// Pending reports the number of events scheduled but not yet fired
// (including cancelled events not yet reaped).
func (e *Engine) Pending() int { return len(e.queue) }

// At schedules fn to run at absolute time t. Scheduling in the past panics:
// it always indicates a model bug.
func (e *Engine) At(t Time, name string, fn func()) *Event {
	if t < e.now {
		panic(fmt.Sprintf("sim: event %q scheduled at %v, before now %v", name, t, e.now))
	}
	e.seq++
	ev := &Event{at: t, seq: e.seq, fn: fn, name: name}
	heap.Push(&e.queue, ev)
	return ev
}

// After schedules fn to run d nanoseconds from now. Negative d panics.
func (e *Engine) After(d Time, name string, fn func()) *Event {
	if d < 0 {
		panic(fmt.Sprintf("sim: event %q scheduled after negative delay %v", name, d))
	}
	return e.At(e.now+d, name, fn)
}

// Stop makes the current Run/RunUntil/RunFor call return after the
// currently-executing event completes. Pending events stay queued.
func (e *Engine) Stop() { e.stopped = true }

// step pops and runs the next event. It reports false when the queue is empty.
func (e *Engine) step() bool {
	for len(e.queue) > 0 {
		ev := heap.Pop(&e.queue).(*Event)
		if ev.canceled {
			continue
		}
		e.now = ev.at
		e.fired++
		ev.fn()
		return true
	}
	return false
}

// Run executes events until the queue is empty or Stop is called.
func (e *Engine) Run() {
	e.stopped = false
	for !e.stopped && e.step() {
	}
}

// RunUntil executes events with timestamps <= t, then sets the clock to t
// (if it is not already past t).
func (e *Engine) RunUntil(t Time) {
	e.stopped = false
	for !e.stopped {
		if len(e.queue) == 0 {
			break
		}
		// Peek.
		next := e.queue[0]
		if next.canceled {
			heap.Pop(&e.queue)
			continue
		}
		if next.at > t {
			break
		}
		e.step()
	}
	if e.now < t {
		e.now = t
	}
}

// RunFor executes events for d nanoseconds of simulated time from now.
func (e *Engine) RunFor(d Time) { e.RunUntil(e.now + d) }
