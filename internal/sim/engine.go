// Package sim provides a deterministic discrete-event simulation engine.
//
// All QPIP hardware models (NIC processors, DMA engines, links, host CPUs)
// are built on this engine. Real protocol code runs inside event callbacks;
// only time is simulated. The engine is single-threaded and fully
// deterministic: events fire in non-decreasing timestamp order, with ties
// broken by scheduling order.
//
// Two queue implementations live behind the same API. The default is a
// four-level hierarchical timer wheel (wheel.go) with a per-engine Event
// free list, so steady-state scheduling, cancellation, and firing allocate
// nothing. The original container/heap queue is kept as a baseline, selected
// with SetLegacyQueue, for A/B determinism tests and benchmark comparisons.
// Both orderings are identical by construction: (at, seq) is a total order.
package sim

import (
	"container/heap"
	"fmt"
)

// Time is a simulated timestamp in nanoseconds since the start of the run.
type Time int64

// Common durations.
const (
	Nanosecond  Time = 1
	Microsecond Time = 1000
	Millisecond Time = 1000 * 1000
	Second      Time = 1000 * 1000 * 1000
)

// Micros reports t as a floating-point number of microseconds.
func (t Time) Micros() float64 { return float64(t) / 1e3 }

// Millis reports t as a floating-point number of milliseconds.
func (t Time) Millis() float64 { return float64(t) / 1e6 }

// Seconds reports t as a floating-point number of seconds.
func (t Time) Seconds() float64 { return float64(t) / 1e9 }

func (t Time) String() string {
	switch {
	case t >= Second:
		return fmt.Sprintf("%.6fs", t.Seconds())
	case t >= Millisecond:
		return fmt.Sprintf("%.3fms", t.Millis())
	case t >= Microsecond:
		return fmt.Sprintf("%.3fus", t.Micros())
	default:
		return fmt.Sprintf("%dns", int64(t))
	}
}

// Micros converts a floating-point number of microseconds to a Time.
func Micros(us float64) Time { return Time(us * 1e3) }

// legacyQueue selects the container/heap queue (and disables event pooling)
// for engines created after the call. It exists so benchmarks and the chaos
// determinism tests can compare the optimized engine against the original.
var legacyQueue bool

// SetLegacyQueue selects the pre-wheel heap queue for subsequently created
// engines. Call only between simulation runs.
func SetLegacyQueue(v bool) { legacyQueue = v }

// LegacyQueue reports whether new engines will use the heap queue.
func LegacyQueue() bool { return legacyQueue }

// Event lifecycle states.
const (
	evFree     uint8 = iota // on the engine free list (or never scheduled)
	evHeap                  // queued in the legacy binary heap
	evWheel                 // linked into a timer-wheel slot
	evDue                   // in the due buffer, about to fire
	evOverflow              // parked beyond the wheel horizon
	evFired                 // callback ran
	evCanceled              // cancelled before firing
)

// Event is a scheduled callback. It may be cancelled before it fires.
//
// Events are pooled per engine: once an event has fired or been cancelled,
// the engine may hand the same *Event out again from a later At/After call.
// Holders that keep an event across callbacks must therefore drop their
// reference when it fires (set it to nil first thing in the callback) and
// immediately after calling Cancel — the discipline every timer holder in
// this repo already follows. Calling Cancel on an event that already fired
// is a harmless no-op.
type Event struct {
	at    Time
	seq   uint64
	fn    func()
	name  string
	eng   *Engine
	state uint8

	// srv, when non-nil, is the Server whose job this event completes; the
	// engine decrements the server's queue depth before running fn. Keeping
	// the pointer in the event (rather than wrapping fn) makes Server.Do
	// allocation-free.
	srv *Server

	index int // heap position (legacy engines), -1 once popped or removed

	// Timer-wheel intrusive list links. next doubles as the free-list link.
	next, prev *Event
	level      int8
	slot       uint8
}

// At reports the time the event is scheduled to fire.
func (ev *Event) At() Time { return ev.at }

// Canceled reports whether Cancel was called before the event fired.
func (ev *Event) Canceled() bool { return ev.state == evCanceled }

// Cancel prevents the event's callback from running and removes it from the
// queue. Cancelling an event that already fired or was already cancelled is
// a no-op.
func (ev *Event) Cancel() {
	switch ev.state {
	case evHeap:
		ev.state = evCanceled
		ev.eng.live--
		heap.Remove(&ev.eng.queue, ev.index)
	case evWheel:
		ev.state = evCanceled
		ev.eng.live--
		ev.eng.wheel.unlink(ev)
		ev.eng.recycle(ev)
	case evDue, evOverflow:
		// Sliced storage; reaped (and recycled) when its batch is visited.
		ev.state = evCanceled
		ev.eng.live--
	}
}

type eventHeap []*Event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}
func (h *eventHeap) Push(x any) {
	ev := x.(*Event)
	ev.index = len(*h)
	*h = append(*h, ev)
}
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	ev.index = -1
	*h = old[:n-1]
	return ev
}

// Engine is a discrete-event simulation kernel.
//
// The zero value is not usable; create engines with NewEngine.
type Engine struct {
	now     Time
	lastAt  Time // timestamp of the most recently fired event
	seq     uint64
	fired   uint64
	live    int // scheduled, not yet fired or cancelled
	stopped bool
	legacy  bool

	queue eventHeap // legacy mode

	// Wheel mode: the wheel proper plus the "due" buffer — the already
	// drained, (at, seq)-ordered run of events about to fire. dueHead
	// indexes the next event to pop so draining never shifts the slice.
	wheel   wheel
	due     []*Event
	dueHead int
	free    *Event // event free list, linked through next
}

// NewEngine returns an engine with the clock at zero and an empty queue.
func NewEngine() *Engine {
	return &Engine{legacy: legacyQueue}
}

// Now reports the current simulated time.
func (e *Engine) Now() Time { return e.now }

// Fired reports the number of events executed so far.
func (e *Engine) Fired() uint64 { return e.fired }

// Pending reports the number of live events: scheduled but not yet fired or
// cancelled.
func (e *Engine) Pending() int { return e.live }

// LastEventAt reports the timestamp of the most recently executed event
// (zero if none has fired). Unlike Now, it is not advanced by RunUntil's
// clock forcing, so it identifies "when the simulation last did work" — the
// quantity that is comparable between a sequential run (where Now stops at
// the final event) and an epoch-barrier parallel run (where RunUntil pushes
// every shard clock to the barrier horizon).
func (e *Engine) LastEventAt() Time { return e.lastAt }

// NextAt reports the timestamp of the next live event without firing it.
// It reports false when the queue is empty. Used by the conservative
// parallel runner to compute the epoch horizon.
func (e *Engine) NextAt() (Time, bool) {
	ev, ok := e.peek()
	if !ok {
		return 0, false
	}
	return ev.at, true
}

// alloc hands out an event, reusing the free list in wheel mode.
//
//qpip:hotpath
func (e *Engine) alloc(t Time, name string, fn func()) *Event {
	ev := e.free
	if ev != nil {
		e.free = ev.next
		ev.next = nil
	} else {
		ev = &Event{eng: e}
	}
	e.seq++
	ev.at, ev.seq, ev.fn, ev.name = t, e.seq, fn, name
	return ev
}

// recycle returns a fired or cancelled event to the free list. The state
// field is deliberately left as evFired/evCanceled so a stale holder's
// Canceled() read stays truthful until the event is handed out again.
//
//qpip:hotpath
func (e *Engine) recycle(ev *Event) {
	if e.legacy {
		return // legacy engines model the original allocate-per-event path
	}
	ev.fn = nil
	ev.name = ""
	ev.srv = nil
	ev.prev = nil
	ev.next = e.free
	e.free = ev
}

// At schedules fn to run at absolute time t. Scheduling in the past panics:
// it always indicates a model bug.
//
//qpip:hotpath
func (e *Engine) At(t Time, name string, fn func()) *Event {
	if t < e.now {
		panic(fmt.Sprintf("sim: event %q scheduled at %v, before now %v", name, t, e.now))
	}
	ev := e.alloc(t, name, fn)
	e.live++
	if e.legacy {
		ev.state = evHeap
		heap.Push(&e.queue, ev)
		return ev
	}
	// An active due buffer covers timestamps up to its last entry; events
	// landing inside that span must join it (sorted; equal timestamps go
	// after existing ones since the new seq is highest). Everything later
	// goes to the wheel, which only holds times beyond the due horizon.
	//
	// The wheel cursor can sit ahead of the clock with an empty due buffer:
	// peek pulls the next event (advancing the cursor to it) and RunUntil
	// then breaks with the clock forced to an earlier horizon; if that
	// parked event is cancelled and reaped, nothing due remains. The wheel
	// never rescans slots behind its cursor, so any timestamp at or below
	// the cursor must join the due buffer too.
	n := len(e.due)
	inDue := n > e.dueHead && t <= e.due[n-1].at
	if !inDue && uint64(t) < e.wheel.cur {
		inDue = true
		if e.dueHead == n {
			e.due = e.due[:0]
			e.dueHead = 0
			n = 0
		}
	}
	if inDue {
		ev.state = evDue
		i := len(e.due)
		for i > e.dueHead && e.due[i-1].at > t {
			i--
		}
		e.due = append(e.due, nil)
		copy(e.due[i+1:], e.due[i:])
		e.due[i] = ev
		return ev
	}
	e.wheel.insert(ev)
	return ev
}

// After schedules fn to run d nanoseconds from now. Negative d panics.
//
//qpip:hotpath
func (e *Engine) After(d Time, name string, fn func()) *Event {
	if d < 0 {
		panic(fmt.Sprintf("sim: event %q scheduled after negative delay %v", name, d))
	}
	return e.At(e.now+d, name, fn)
}

// Stop makes the current Run/RunUntil/RunFor call return after the
// currently-executing event completes. Pending events stay queued.
func (e *Engine) Stop() { e.stopped = true }

// peek exposes the next live event without firing it, refilling the due
// buffer from the wheel as needed. It reports false when the queue is empty.
//
//qpip:hotpath
func (e *Engine) peek() (*Event, bool) {
	if e.legacy {
		for len(e.queue) > 0 {
			if ev := e.queue[0]; ev.state != evCanceled {
				return ev, true
			}
			heap.Pop(&e.queue) // stale entry; cancelled events are removed eagerly
		}
		return nil, false
	}
	for {
		for e.dueHead < len(e.due) {
			ev := e.due[e.dueHead]
			if ev.state != evCanceled {
				return ev, true
			}
			e.due[e.dueHead] = nil
			e.dueHead++
			e.recycle(ev)
		}
		e.due = e.due[:0]
		e.dueHead = 0
		if !e.wheel.pullNext(e) {
			return nil, false
		}
	}
}

// step pops and runs the next event. It reports false when the queue is empty.
//
//qpip:hotpath
func (e *Engine) step() bool {
	ev, ok := e.peek()
	if !ok {
		return false
	}
	if e.legacy {
		heap.Pop(&e.queue)
	} else {
		e.due[e.dueHead] = nil
		e.dueHead++
	}
	ev.state = evFired
	e.now = ev.at
	e.lastAt = ev.at
	e.fired++
	e.live--
	if ev.srv != nil {
		ev.srv.inQueue--
	}
	if ev.fn != nil {
		ev.fn()
	}
	// Recycled only after fn returns: any holder has nilled its reference by
	// then (callbacks clear their own handle first), so reuse is safe.
	e.recycle(ev)
	return true
}

// Run executes events until the queue is empty or Stop is called.
func (e *Engine) Run() {
	e.stopped = false
	for !e.stopped && e.step() {
	}
}

// RunUntil executes events with timestamps <= t, then sets the clock to t
// (if it is not already past t).
func (e *Engine) RunUntil(t Time) {
	e.stopped = false
	for !e.stopped {
		next, ok := e.peek()
		if !ok || next.at > t {
			break
		}
		e.step()
	}
	if e.now < t {
		e.now = t
	}
}

// RunFor executes events for d nanoseconds of simulated time from now.
func (e *Engine) RunFor(d Time) { e.RunUntil(e.now + d) }
