package sim

import (
	"fmt"
	"math/rand"
	"testing"
)

// traceEntry records one fired event for cross-queue comparison.
type traceEntry struct {
	name string
	at   Time
}

// runQueueScript drives an engine through a randomized but fully
// deterministic workload: nested scheduling from callbacks, cancellations,
// timestamp ties, RunUntil clock jumps with scheduling in between, and
// far-future timers that land in the wheel's overflow. The rng is consulted
// in callback execution order, so any ordering difference between queue
// implementations snowballs into an obviously different trace.
func runQueueScript(seed int64) (trace []traceEntry, fired uint64, pending int) {
	e := NewEngine()
	rng := rand.New(rand.NewSource(seed))
	var handles []*Event
	nameN := 0

	randomDelay := func() Time {
		switch r := rng.Intn(100); {
		case r < 10:
			return 0
		case r < 65:
			return Time(rng.Intn(50)) * 10 // quantized: forces ties
		case r < 85:
			return Time(rng.Intn(1_000_000))
		case r < 95:
			// Beyond level 0/1, still inside the wheel horizon.
			return Time(rng.Int63n(1 << 30))
		default:
			// Past the 2^32 ns horizon: overflow territory.
			return 5*Second + Time(rng.Int63n(int64(300*Second)))
		}
	}

	var newEv func(d Time, depth int)
	newEv = func(d Time, depth int) {
		nameN++
		name := fmt.Sprintf("ev%d", nameN)
		slot := len(handles)
		handles = append(handles, nil)
		handles[slot] = e.After(d, name, func() {
			handles[slot] = nil // holder discipline: drop before anything else
			trace = append(trace, traceEntry{name, e.Now()})
			if depth < 3 {
				for i, k := 0, rng.Intn(3); i < k; i++ {
					newEv(randomDelay(), depth+1)
				}
			}
			if rng.Intn(4) == 0 {
				if h := handles[rng.Intn(len(handles))]; h != nil {
					h.Cancel()
					// The slot is found and nilled below.
					for i, x := range handles {
						if x == h {
							handles[i] = nil
						}
					}
				}
			}
		})
	}

	for i := 0; i < 40; i++ {
		newEv(randomDelay(), 0)
	}
	// Clock jumps interleaved with scheduling, so events land both before
	// and after whatever the engine has already peeked at.
	for i := 0; i < 30; i++ {
		e.RunFor(Time(rng.Int63n(200_000)))
		for j, k := 0, rng.Intn(4); j < k; j++ {
			newEv(randomDelay(), 0)
		}
	}
	e.Run()
	return trace, e.Fired(), e.Pending()
}

// TestWheelMatchesLegacyHeap is the queue-equivalence property: the timer
// wheel must produce bit-for-bit the event order of the original
// container/heap queue on randomized workloads.
func TestWheelMatchesLegacyHeap(t *testing.T) {
	defer SetLegacyQueue(false)
	for seed := int64(1); seed <= 12; seed++ {
		SetLegacyQueue(true)
		wantTrace, wantFired, wantPending := runQueueScript(seed)
		SetLegacyQueue(false)
		gotTrace, gotFired, gotPending := runQueueScript(seed)

		if gotFired != wantFired || gotPending != wantPending {
			t.Fatalf("seed %d: fired/pending = %d/%d (wheel) vs %d/%d (heap)",
				seed, gotFired, gotPending, wantFired, wantPending)
		}
		if len(gotTrace) != len(wantTrace) {
			t.Fatalf("seed %d: trace length %d (wheel) vs %d (heap)", seed, len(gotTrace), len(wantTrace))
		}
		for i := range wantTrace {
			if gotTrace[i] != wantTrace[i] {
				t.Fatalf("seed %d: trace diverges at %d: %v (wheel) vs %v (heap)",
					seed, i, gotTrace[i], wantTrace[i])
			}
		}
		if wantFired == 0 {
			t.Fatalf("seed %d: degenerate script fired nothing", seed)
		}
	}
}

// TestCancelledTimersDoNotGrowQueue is the cancelled-event-leak regression:
// schedule and immediately cancel 1M timers (the tcp rexmt/delack churn
// pattern) and require that neither queue implementation accumulates them.
func TestCancelledTimersDoNotGrowQueue(t *testing.T) {
	defer SetLegacyQueue(false)
	for _, legacy := range []bool{false, true} {
		SetLegacyQueue(legacy)
		e := NewEngine()
		anchor := false
		e.After(2*Second, "anchor", func() { anchor = true })
		const total = 1 << 20
		for i := 0; i < total; i++ {
			ev := e.After(Time(1000+i%777), "churn", func() { t.Error("cancelled timer fired") })
			ev.Cancel()
			if !ev.Canceled() {
				t.Fatalf("legacy=%v: Canceled() false after Cancel", legacy)
			}
			if p := e.Pending(); p != 1 {
				t.Fatalf("legacy=%v: Pending = %d after %d cancels, want 1", legacy, p, i+1)
			}
		}
		if legacy {
			if n := len(e.queue); n != 1 {
				t.Fatalf("legacy heap holds %d entries after cancels, want 1", n)
			}
		} else {
			if n := len(e.due); n != e.dueHead {
				t.Fatalf("due buffer holds %d entries after cancels", n-e.dueHead)
			}
		}
		e.Run()
		if e.Fired() != 1 || !anchor {
			t.Fatalf("legacy=%v: fired %d events, want 1 (anchor ran: %v)", legacy, e.Fired(), anchor)
		}
	}
}

// TestWheelOverflowOrdering exercises the >2^32ns overflow path directly:
// TIME_WAIT-scale timers across several top-level windows, with ties and a
// cancellation, must fire in (at, seq) order.
func TestWheelOverflowOrdering(t *testing.T) {
	e := NewEngine()
	var got []string
	add := func(name string, at Time) *Event {
		return e.At(at, name, func() { got = append(got, name) })
	}
	add("near", 100)
	add("tw1", 60*Second)
	add("tw2", 60*Second) // tie: scheduling order breaks it
	add("far", 300*Second)
	victim := add("victim", 120*Second)
	add("mid", 5*Second)
	victim.Cancel()
	e.Run()
	want := []string{"near", "mid", "tw1", "tw2", "far"}
	if len(got) != len(want) {
		t.Fatalf("fired %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("fired %v, want %v", got, want)
		}
	}
	if e.Now() != 300*Second {
		t.Fatalf("Now = %v, want 300s", e.Now())
	}
}

// TestDueFrontInsert pins the peek-then-schedule-earlier corner: RunUntil
// materializes the next slot into the due buffer; a subsequent schedule with
// an earlier timestamp must still fire first.
func TestDueFrontInsert(t *testing.T) {
	e := NewEngine()
	var got []string
	e.At(1000, "late", func() { got = append(got, "late") })
	e.RunUntil(500) // peeks (and buffers) the event at 1000
	e.At(600, "early", func() { got = append(got, "early") })
	e.At(1000, "tie", func() { got = append(got, "tie") })
	e.Run()
	if len(got) != 3 || got[0] != "early" || got[1] != "late" || got[2] != "tie" {
		t.Fatalf("fired %v, want [early late tie]", got)
	}
}
