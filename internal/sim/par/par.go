// Package par is the conservative parallel runner for sharded simulations.
//
// A sharded cluster assigns every node to one of N shards, each shard
// owning a private sim.Engine. The runner advances all engines in lockstep
// epochs: with L the minimum latency any frame needs to cross between
// shards (the lookahead), and minNext the earliest pending event across all
// engines, every event fired in the epoch window [minNext, minNext+L-1]
// that hands work to another shard produces an arrival no earlier than
// minNext+L — strictly beyond the window. Shards therefore run the window
// concurrently without ever needing input from each other, and the
// cross-shard handoffs buffered during the window are injected at the
// barrier, before the next window is computed. Injection order is fixed by
// the Exchange hook (fabrics drain per-source mailboxes in attachment
// order), so the schedule — and every trace and counter derived from it —
// is a pure function of the workload and seeds, independent of how the OS
// interleaves the worker threads.
//
// This is the ONE simulated package where goroutines and sync primitives
// are legal (enforced by qpiplint's nogoroutine allowlist): all other model
// code still runs single-threaded inside exactly one engine, and the
// determinism argument reduces to the barrier algebra above.
package par

import (
	"fmt"

	"repro/internal/sim"
)

// runFree is the command telling a worker to drain its engine to quiescence
// (no horizon). Used when no unsevered cross-shard link exists, so every
// shard's schedule is already closed under its own events.
const runFree sim.Time = -1

// Config describes one parallel run.
type Config struct {
	// Engines are the shard engines, indexed by shard.
	Engines []*sim.Engine
	// Lookahead is the minimum cross-shard frame latency. Zero means no
	// unsevered cross-shard links exist: shards run free, one epoch.
	Lookahead sim.Time
	// Exchange injects all buffered cross-shard handoffs into their
	// destination engines and returns how many were injected. It is called
	// only between epochs, on the coordinating goroutine, with every worker
	// parked at the barrier. Nil means there is nothing to exchange.
	Exchange func() int
}

// worker owns one engine for the duration of a run. Commands carry the
// epoch horizon (or runFree); each command is answered on done, which also
// publishes the worker's memory writes back to the coordinator.
type worker struct {
	eng  *sim.Engine
	cmd  chan sim.Time
	done chan struct{}
	err  any // recovered panic, re-raised by the coordinator
}

func (w *worker) loop() {
	for horizon := range w.cmd {
		func() {
			defer func() { w.err = recover() }()
			if horizon == runFree {
				w.eng.Run()
			} else {
				w.eng.RunUntil(horizon)
			}
		}()
		w.done <- struct{}{}
	}
}

// Run advances all engines to global quiescence using lockstep epochs.
// A model panic on any shard is re-raised on the caller's goroutine with
// the shard identified.
func Run(cfg Config) {
	if len(cfg.Engines) == 0 {
		return
	}
	RunUntil(cfg, -1)
}

// RunUntil is Run with an inclusive time limit: events with timestamps
// <= limit execute, then every shard clock is forced to limit (mirroring
// sim.Engine.RunUntil). A negative limit means no limit.
func RunUntil(cfg Config, limit sim.Time) {
	workers := make([]*worker, len(cfg.Engines))
	for i, eng := range cfg.Engines {
		w := &worker{eng: eng, cmd: make(chan sim.Time), done: make(chan struct{})}
		workers[i] = w
		go w.loop() // legal: internal/sim/par is nogoroutine's shard-runner allowlist
	}
	defer func() {
		for _, w := range workers {
			close(w.cmd)
		}
	}()

	epoch := func(horizon sim.Time) {
		for _, w := range workers {
			w.cmd <- horizon
		}
		for _, w := range workers {
			<-w.done
			if w.err != nil {
				panic(fmt.Sprintf("par: shard panicked: %v", w.err))
			}
		}
	}

	// Invariant at the top of each iteration: all cross-shard mailboxes are
	// empty (Exchange ran after the previous epoch; they start empty).
	for {
		minNext, any := nextAcross(cfg.Engines)
		if !any || (limit >= 0 && minNext > limit) {
			break
		}
		if cfg.Lookahead <= 0 {
			// No cross-shard links: one free-running epoch drains everything.
			if limit >= 0 {
				epoch(limit)
			} else {
				epoch(runFree)
			}
		} else {
			horizon := minNext + cfg.Lookahead - 1
			if limit >= 0 && horizon > limit {
				horizon = limit
			}
			epoch(horizon)
		}
		if cfg.Exchange != nil {
			cfg.Exchange()
		} else if cfg.Lookahead <= 0 {
			break // free-running with nothing to exchange: done in one epoch
		}
	}
	if limit >= 0 {
		// Mirror sequential RunUntil: force every clock to the limit.
		epoch(limit)
	}
}

// nextAcross reports the earliest pending event timestamp across engines.
func nextAcross(engines []*sim.Engine) (sim.Time, bool) {
	var minNext sim.Time
	any := false
	for _, e := range engines {
		if t, ok := e.NextAt(); ok && (!any || t < minNext) {
			minNext, any = t, true
		}
	}
	return minNext, any
}
