package par_test

import (
	"strings"
	"testing"

	"repro/internal/sim"
	"repro/internal/sim/par"
)

// ping is a toy cross-shard workload: each hop on engine s schedules, via a
// mailbox drained at the barrier, the next hop on the other engine exactly
// lat later — the minimal shape of the fabric's cross-shard handoff.
type ping struct {
	engines []*sim.Engine
	lat     sim.Time
	mail    []func() // pending cross-engine injections
	log     []sim.Time
	hops    int
}

func (p *ping) hop(from int) func() {
	return func() {
		e := p.engines[from]
		p.log = append(p.log, e.Now())
		if p.hops <= 0 {
			return
		}
		p.hops--
		to := 1 - from
		at := e.Now() + p.lat
		p.mail = append(p.mail, func() {
			p.engines[to].At(at, "hop", p.hop(to))
		})
	}
}

func (p *ping) exchange() int {
	n := len(p.mail)
	for _, fn := range p.mail {
		fn()
	}
	p.mail = p.mail[:0]
	return n
}

func TestRunPingPongAcrossShards(t *testing.T) {
	p := &ping{
		engines: []*sim.Engine{sim.NewEngine(), sim.NewEngine()},
		lat:     5,
		hops:    10,
	}
	p.engines[0].At(0, "hop", p.hop(0))
	par.Run(par.Config{Engines: p.engines, Lookahead: p.lat, Exchange: p.exchange})

	if len(p.log) != 11 {
		t.Fatalf("fired %d hops, want 11", len(p.log))
	}
	for i, at := range p.log {
		if want := sim.Time(i) * p.lat; at != want {
			t.Errorf("hop %d fired at %v, want %v", i, at, want)
		}
	}
	if got := p.engines[0].Fired() + p.engines[1].Fired(); got != 11 {
		t.Errorf("fired totals sum to %d, want 11", got)
	}
}

// TestRunUntilLimit: events beyond the limit stay queued, and every shard
// clock lands exactly on the limit (mirroring sim.Engine.RunUntil).
func TestRunUntilLimit(t *testing.T) {
	p := &ping{
		engines: []*sim.Engine{sim.NewEngine(), sim.NewEngine()},
		lat:     5,
		hops:    100,
	}
	p.engines[0].At(0, "hop", p.hop(0))
	par.RunUntil(par.Config{Engines: p.engines, Lookahead: p.lat, Exchange: p.exchange}, 23)

	if len(p.log) != 5 { // hops at 0,5,10,15,20
		t.Fatalf("fired %d hops by t=23, want 5", len(p.log))
	}
	for i, e := range p.engines {
		if e.Now() != 23 {
			t.Errorf("engine %d clock %v after RunUntil(23), want 23", i, e.Now())
		}
	}
	// Resuming runs the rest of the schedule seamlessly.
	par.Run(par.Config{Engines: p.engines, Lookahead: p.lat, Exchange: p.exchange})
	if len(p.log) != 101 {
		t.Errorf("fired %d hops after resume, want 101", len(p.log))
	}
}

// TestFreeRunWithoutLookahead: zero lookahead (no cross-shard links) drains
// each engine independently in one epoch.
func TestFreeRunWithoutLookahead(t *testing.T) {
	engines := []*sim.Engine{sim.NewEngine(), sim.NewEngine()}
	var fired [2]int
	for i, e := range engines {
		i := i
		for k := 0; k < 4; k++ {
			e.At(sim.Time(k*7), "tick", func() { fired[i]++ })
		}
	}
	par.Run(par.Config{Engines: engines})
	if fired[0] != 4 || fired[1] != 4 {
		t.Errorf("fired = %v, want [4 4]", fired)
	}
}

// TestShardPanicPropagates: a model panic on a worker thread re-raises on
// the coordinating goroutine instead of crashing the process.
func TestShardPanicPropagates(t *testing.T) {
	engines := []*sim.Engine{sim.NewEngine(), sim.NewEngine()}
	engines[1].At(3, "boom", func() { panic("model bug on shard 1") })
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("shard panic was swallowed")
		}
		if !strings.Contains(r.(string), "model bug on shard 1") {
			t.Fatalf("recovered %q, want the shard's panic value", r)
		}
	}()
	par.Run(par.Config{Engines: engines, Lookahead: 1, Exchange: func() int { return 0 }})
}

// TestEmptyConfig: no engines is a no-op, and engines with no events
// terminate immediately.
func TestEmptyConfig(t *testing.T) {
	par.Run(par.Config{})
	e := sim.NewEngine()
	par.Run(par.Config{Engines: []*sim.Engine{e}, Lookahead: 1, Exchange: func() int { return 0 }})
	if e.Fired() != 0 {
		t.Errorf("fired %d events on an empty engine", e.Fired())
	}
}
