package sim

import "fmt"

// Server is a non-preemptive first-come-first-served resource: a CPU, a DMA
// engine, a link transmitter. Work submitted with Do occupies the server for
// a given duration; completions run in submission order. The server tracks
// cumulative busy time so callers can compute utilization — the quantity the
// paper reports for host CPUs and NIC occupancy.
type Server struct {
	eng       *Engine
	name      string
	busyUntil Time
	busyTotal Time
	jobs      uint64
	maxQueue  int
	inQueue   int
}

// NewServer returns an idle server bound to eng.
func NewServer(eng *Engine, name string) *Server {
	return &Server{eng: eng, name: name}
}

// Name reports the server's diagnostic name.
func (s *Server) Name() string { return s.name }

// Do enqueues a job of the given duration and schedules done (which may be
// nil) to run when the job completes. It returns the completion time.
//
//qpip:hotpath
func (s *Server) Do(d Time, what string, done func()) Time {
	if d < 0 {
		panic(fmt.Sprintf("sim: server %s job %q with negative duration %v", s.name, what, d))
	}
	start := s.eng.Now()
	if s.busyUntil > start {
		start = s.busyUntil
	}
	finish := start + d
	s.busyUntil = finish
	s.busyTotal += d
	s.jobs++
	s.inQueue++
	if s.inQueue > s.maxQueue {
		s.maxQueue = s.inQueue
	}
	// The completion event carries the server pointer instead of a wrapper
	// closure; the engine decrements inQueue itself. This keeps the hot
	// Do path allocation-free (the event comes from the engine free list).
	ev := s.eng.At(finish, what, done)
	ev.srv = s
	return finish
}

// Idle reports whether the server has no queued or running work.
func (s *Server) Idle() bool { return s.busyUntil <= s.eng.Now() }

// BusyUntil reports the time at which all currently queued work completes.
func (s *Server) BusyUntil() Time { return s.busyUntil }

// BusyTotal reports the cumulative busy time across all jobs ever submitted
// (including queued jobs not yet finished).
func (s *Server) BusyTotal() Time { return s.busyTotal }

// Jobs reports the number of jobs ever submitted.
func (s *Server) Jobs() uint64 { return s.jobs }

// MaxQueue reports the high-water mark of simultaneously outstanding jobs.
func (s *Server) MaxQueue() int { return s.maxQueue }

// Utilization reports busyTotal / elapsed over [0, now], clamped to [0, 1].
// A server backlogged past now reports 1.
func (s *Server) Utilization() float64 {
	now := s.eng.Now()
	if now == 0 {
		return 0
	}
	busy := s.busyTotal
	if s.busyUntil > now {
		busy -= s.busyUntil - now // exclude not-yet-elapsed busy time
	}
	u := float64(busy) / float64(now)
	if u < 0 {
		u = 0
	}
	if u > 1 {
		u = 1
	}
	return u
}

// UtilizationSince reports the fraction of [since, now] the server was busy,
// given the busy total captured at `since` via BusyTotal.
func (s *Server) UtilizationSince(since Time, busyAtSince Time) float64 {
	now := s.eng.Now()
	if now <= since {
		return 0
	}
	busy := s.busyTotal - busyAtSince
	if s.busyUntil > now {
		busy -= s.busyUntil - now
	}
	u := float64(busy) / float64(now-since)
	if u < 0 {
		u = 0
	}
	if u > 1 {
		u = 1
	}
	return u
}

// CPU is a Server with a clock rate, so work can be expressed in cycles —
// the unit the paper uses for host overhead (Table 1) and NIC stage costs
// (Tables 2 and 3).
type CPU struct {
	*Server
	hz float64
}

// NewCPU returns a CPU resource running at hz cycles per second.
func NewCPU(eng *Engine, name string, hz float64) *CPU {
	if hz <= 0 {
		panic("sim: CPU clock rate must be positive")
	}
	return &CPU{Server: NewServer(eng, name), hz: hz}
}

// Hz reports the CPU clock rate.
func (c *CPU) Hz() float64 { return c.hz }

// CycleTime converts a cycle count to simulated time.
func (c *CPU) CycleTime(cycles float64) Time {
	return Time(cycles * 1e9 / c.hz)
}

// Cycles converts a duration to a cycle count at this CPU's clock rate.
func (c *CPU) Cycles(d Time) float64 {
	return float64(d) * c.hz / 1e9
}

// DoCycles enqueues a job costing the given number of cycles.
//
//qpip:hotpath
func (c *CPU) DoCycles(cycles float64, what string, done func()) Time {
	return c.Do(c.CycleTime(cycles), what, done)
}

// BusyCycles reports cumulative busy time in cycles.
func (c *CPU) BusyCycles() float64 { return c.Cycles(c.BusyTotal()) }
