package sim

import "testing"

// benchEngine builds an engine in the requested queue mode.
func benchEngine(legacy bool) *Engine {
	SetLegacyQueue(legacy)
	defer SetLegacyQueue(false)
	return NewEngine()
}

func benchScheduleFire(b *testing.B, legacy bool) {
	e := benchEngine(legacy)
	nop := func() {}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.After(Time(i%1000), "bench", nop)
		e.step()
	}
}

func BenchmarkScheduleFire(b *testing.B)       { benchScheduleFire(b, false) }
func BenchmarkScheduleFireLegacy(b *testing.B) { benchScheduleFire(b, true) }

func benchScheduleCancel(b *testing.B, legacy bool) {
	e := benchEngine(legacy)
	nop := func() {}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ev := e.After(Time(1000+i%777), "bench", nop)
		ev.Cancel()
	}
}

func BenchmarkScheduleCancel(b *testing.B)       { benchScheduleCancel(b, false) }
func BenchmarkScheduleCancelLegacy(b *testing.B) { benchScheduleCancel(b, true) }

// BenchmarkTimerChurn models the tcp timer pattern: a standing far deadline
// that is repeatedly cancelled and re-armed while near events fire.
func benchTimerChurn(b *testing.B, legacy bool) {
	e := benchEngine(legacy)
	nop := func() {}
	var timer *Event
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if timer != nil {
			timer.Cancel()
			timer = nil
		}
		timer = e.After(200*Millisecond, "rexmt", nop)
		e.After(0, "work", nop)
		e.step()
	}
}

func BenchmarkTimerChurn(b *testing.B)       { benchTimerChurn(b, false) }
func BenchmarkTimerChurnLegacy(b *testing.B) { benchTimerChurn(b, true) }

func BenchmarkParkWake(b *testing.B) {
	e := NewEngine()
	p := e.Spawn("bench", func(p *Proc) {
		for {
			p.Suspend()
		}
	})
	e.Run() // parks the process
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.Wake()
	}
}

// TestScheduleFireAllocFree locks in the event free list: steady-state
// schedule/fire and schedule/cancel cycles on a warm wheel engine must not
// allocate at all.
func TestScheduleFireAllocFree(t *testing.T) {
	e := NewEngine()
	nop := func() {}
	// Warm up the free list and due buffer.
	for i := 0; i < 64; i++ {
		e.After(Time(i), "warm", nop)
	}
	e.Run()
	if n := testing.AllocsPerRun(1000, func() {
		e.After(100, "fire", nop)
		e.step()
	}); n != 0 {
		t.Fatalf("schedule+fire allocates %v/op, want 0", n)
	}
	if n := testing.AllocsPerRun(1000, func() {
		ev := e.After(1000, "cancel", nop)
		ev.Cancel()
	}); n != 0 {
		t.Fatalf("schedule+cancel allocates %v/op, want 0", n)
	}
}

// TestParkWakeAllocFree locks in the park/wake handshake cost: waking a
// parked process must not allocate.
func TestParkWakeAllocFree(t *testing.T) {
	e := NewEngine()
	p := e.Spawn("proc", func(p *Proc) {
		for {
			p.Suspend()
		}
	})
	e.Run()
	if n := testing.AllocsPerRun(1000, func() { p.Wake() }); n != 0 {
		t.Fatalf("park/wake allocates %v/op, want 0", n)
	}
}
