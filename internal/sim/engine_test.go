package sim

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestEngineRunsEventsInOrder(t *testing.T) {
	e := NewEngine()
	var got []Time
	for _, at := range []Time{50, 10, 30, 20, 40} {
		at := at
		e.At(at, "t", func() { got = append(got, at) })
	}
	e.Run()
	want := []Time{10, 20, 30, 40, 50}
	if len(got) != len(want) {
		t.Fatalf("fired %d events, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("event %d fired at %v, want %v", i, got[i], want[i])
		}
	}
	if e.Now() != 50 {
		t.Errorf("Now() = %v, want 50", e.Now())
	}
}

func TestEngineTiesFireInPostOrder(t *testing.T) {
	e := NewEngine()
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		e.At(100, "tie", func() { got = append(got, i) })
	}
	e.Run()
	for i, v := range got {
		if v != i {
			t.Fatalf("tie order: got %v", got)
		}
	}
}

func TestEngineAfterAndNestedScheduling(t *testing.T) {
	e := NewEngine()
	var trace []string
	e.After(10, "a", func() {
		trace = append(trace, "a")
		e.After(5, "b", func() { trace = append(trace, "b") })
		e.At(e.Now()+1, "c", func() { trace = append(trace, "c") })
	})
	e.Run()
	want := []string{"a", "c", "b"}
	for i := range want {
		if i >= len(trace) || trace[i] != want[i] {
			t.Fatalf("trace = %v, want %v", trace, want)
		}
	}
	if e.Now() != 15 {
		t.Errorf("Now() = %v, want 15", e.Now())
	}
}

func TestEngineCancel(t *testing.T) {
	e := NewEngine()
	fired := false
	ev := e.After(10, "x", func() { fired = true })
	ev.Cancel()
	e.Run()
	if fired {
		t.Error("cancelled event fired")
	}
	if !ev.Canceled() {
		t.Error("Canceled() = false after Cancel")
	}
}

func TestEngineCancelFromEarlierEvent(t *testing.T) {
	e := NewEngine()
	fired := false
	late := e.After(20, "late", func() { fired = true })
	e.After(10, "early", func() { late.Cancel() })
	e.Run()
	if fired {
		t.Error("event cancelled mid-run still fired")
	}
}

func TestEngineSchedulePastPanics(t *testing.T) {
	e := NewEngine()
	e.After(10, "advance", func() {})
	e.Run()
	defer func() {
		if recover() == nil {
			t.Error("scheduling in the past did not panic")
		}
	}()
	e.At(5, "past", func() {})
}

func TestEngineNegativeDelayPanics(t *testing.T) {
	e := NewEngine()
	defer func() {
		if recover() == nil {
			t.Error("negative delay did not panic")
		}
	}()
	e.After(-1, "neg", func() {})
}

func TestEngineRunUntil(t *testing.T) {
	e := NewEngine()
	var fired []Time
	for _, at := range []Time{10, 20, 30} {
		at := at
		e.At(at, "t", func() { fired = append(fired, at) })
	}
	e.RunUntil(20)
	if len(fired) != 2 {
		t.Fatalf("fired %d events by t=20, want 2", len(fired))
	}
	if e.Now() != 20 {
		t.Errorf("Now() = %v, want 20", e.Now())
	}
	e.RunUntil(100)
	if len(fired) != 3 {
		t.Fatalf("fired %d events by t=100, want 3", len(fired))
	}
	if e.Now() != 100 {
		t.Errorf("Now() = %v after RunUntil(100), want 100", e.Now())
	}
}

func TestEngineRunForAdvancesClockWithEmptyQueue(t *testing.T) {
	e := NewEngine()
	e.RunFor(500)
	if e.Now() != 500 {
		t.Errorf("Now() = %v, want 500", e.Now())
	}
}

func TestEngineStop(t *testing.T) {
	e := NewEngine()
	count := 0
	e.After(1, "a", func() { count++; e.Stop() })
	e.After(2, "b", func() { count++ })
	e.Run()
	if count != 1 {
		t.Fatalf("ran %d events before Stop took effect, want 1", count)
	}
	e.Run()
	if count != 2 {
		t.Fatalf("ran %d events total, want 2", count)
	}
}

// Property: for any set of random timestamps, events fire in sorted order
// and the engine clock ends at the max timestamp.
func TestEngineOrderProperty(t *testing.T) {
	f := func(raw []uint16) bool {
		if len(raw) == 0 {
			return true
		}
		e := NewEngine()
		var fired []Time
		for _, r := range raw {
			at := Time(r)
			e.At(at, "p", func() { fired = append(fired, at) })
		}
		e.Run()
		if len(fired) != len(raw) {
			return false
		}
		if !sort.SliceIsSorted(fired, func(i, j int) bool { return fired[i] < fired[j] }) {
			return false
		}
		max := fired[len(fired)-1]
		return e.Now() == max
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestTimeString(t *testing.T) {
	cases := []struct {
		t    Time
		want string
	}{
		{500, "500ns"},
		{1500, "1.500us"},
		{2500000, "2.500ms"},
		{3 * Second, "3.000000s"},
	}
	for _, c := range cases {
		if got := c.t.String(); got != c.want {
			t.Errorf("Time(%d).String() = %q, want %q", int64(c.t), got, c.want)
		}
	}
}

func TestMicrosRoundTrip(t *testing.T) {
	d := Micros(12.5)
	if d != 12500 {
		t.Errorf("Micros(12.5) = %v, want 12500", int64(d))
	}
	if d.Micros() != 12.5 {
		t.Errorf("Micros() = %v, want 12.5", d.Micros())
	}
}

func TestServerFCFS(t *testing.T) {
	e := NewEngine()
	s := NewServer(e, "cpu")
	var done []string
	s.Do(10, "a", func() {
		done = append(done, "a")
		if e.Now() != 10 {
			t.Errorf("job a finished at %v, want 10", e.Now())
		}
	})
	s.Do(5, "b", func() {
		done = append(done, "b")
		if e.Now() != 15 {
			t.Errorf("job b finished at %v, want 15 (queued behind a)", e.Now())
		}
	})
	e.Run()
	if len(done) != 2 || done[0] != "a" || done[1] != "b" {
		t.Fatalf("completion order %v, want [a b]", done)
	}
	if s.BusyTotal() != 15 {
		t.Errorf("BusyTotal = %v, want 15", s.BusyTotal())
	}
	if s.Jobs() != 2 {
		t.Errorf("Jobs = %d, want 2", s.Jobs())
	}
}

func TestServerIdleGapNotCountedBusy(t *testing.T) {
	e := NewEngine()
	s := NewServer(e, "cpu")
	s.Do(10, "a", nil)
	e.Run()
	// Idle from 10 to 90.
	e.At(90, "later", func() { s.Do(10, "b", nil) })
	e.Run()
	if e.Now() != 100 {
		t.Fatalf("Now = %v, want 100", e.Now())
	}
	if got := s.Utilization(); got != 0.2 {
		t.Errorf("Utilization = %v, want 0.2", got)
	}
}

func TestServerUtilizationExcludesFutureBusy(t *testing.T) {
	e := NewEngine()
	s := NewServer(e, "cpu")
	e.At(0, "submit", func() { s.Do(100, "long", nil) })
	e.RunUntil(50)
	if got := s.Utilization(); got != 1.0 {
		t.Errorf("Utilization mid-job = %v, want 1.0", got)
	}
}

func TestServerUtilizationSince(t *testing.T) {
	e := NewEngine()
	s := NewServer(e, "cpu")
	s.Do(10, "warmup", nil)
	e.Run()
	since, busyAt := e.Now(), s.BusyTotal()
	e.At(20, "work", func() { s.Do(40, "measured", nil) })
	e.Run()
	e.RunUntil(110)
	// Window [10,110]: 40 busy out of 100.
	if got := s.UtilizationSince(since, busyAt); got != 0.4 {
		t.Errorf("UtilizationSince = %v, want 0.4", got)
	}
}

func TestServerNegativeDurationPanics(t *testing.T) {
	e := NewEngine()
	s := NewServer(e, "cpu")
	defer func() {
		if recover() == nil {
			t.Error("negative duration did not panic")
		}
	}()
	s.Do(-1, "bad", nil)
}

func TestServerMaxQueue(t *testing.T) {
	e := NewEngine()
	s := NewServer(e, "cpu")
	for i := 0; i < 5; i++ {
		s.Do(10, "j", nil)
	}
	if s.MaxQueue() != 5 {
		t.Errorf("MaxQueue = %d, want 5", s.MaxQueue())
	}
	e.Run()
}

func TestCPUCycleConversion(t *testing.T) {
	e := NewEngine()
	c := NewCPU(e, "host", 550e6) // 550 MHz P-III, as in the paper's testbed
	d := c.CycleTime(550)
	if d != 1000 { // 550 cycles at 550 MHz = 1 us
		t.Errorf("CycleTime(550) = %v ns, want 1000", int64(d))
	}
	if got := c.Cycles(Microsecond); got != 550 {
		t.Errorf("Cycles(1us) = %v, want 550", got)
	}
}

func TestCPUDoCyclesAccumulates(t *testing.T) {
	e := NewEngine()
	c := NewCPU(e, "nic", 133e6) // LANai 9 clock
	fired := false
	c.DoCycles(133, "stage", func() { fired = true })
	e.Run()
	if !fired {
		t.Fatal("DoCycles completion did not run")
	}
	if e.Now() != 1000 {
		t.Errorf("133 cycles at 133MHz took %v ns, want 1000", int64(e.Now()))
	}
	if got := c.BusyCycles(); got < 132.9 || got > 133.1 {
		t.Errorf("BusyCycles = %v, want ~133", got)
	}
}

func TestCPUBadRatePanics(t *testing.T) {
	e := NewEngine()
	defer func() {
		if recover() == nil {
			t.Error("zero clock rate did not panic")
		}
	}()
	NewCPU(e, "bad", 0)
}

// Stress: random interleaving of server jobs and plain events stays
// consistent: total busy time equals sum of durations, completions in order.
func TestServerRandomizedConsistency(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 20; trial++ {
		e := NewEngine()
		s := NewServer(e, "cpu")
		var sum Time
		var order []int
		n := 50
		for i := 0; i < n; i++ {
			i := i
			at := Time(rng.Intn(1000))
			d := Time(rng.Intn(100))
			sum += d
			e.At(at, "submit", func() {
				s.Do(d, "job", func() { order = append(order, i) })
			})
		}
		e.Run()
		if s.BusyTotal() != sum {
			t.Fatalf("trial %d: BusyTotal = %v, want %v", trial, s.BusyTotal(), sum)
		}
		if len(order) != n {
			t.Fatalf("trial %d: %d completions, want %d", trial, len(order), n)
		}
	}
}
