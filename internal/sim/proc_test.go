package sim

import "testing"

func TestProcRunsAndFinishes(t *testing.T) {
	e := NewEngine()
	ran := false
	p := e.Spawn("worker", func(p *Proc) { ran = true })
	e.Run()
	if !ran || !p.Done() {
		t.Fatalf("ran=%v done=%v", ran, p.Done())
	}
}

func TestProcSleepAdvancesClock(t *testing.T) {
	e := NewEngine()
	var woke Time
	e.Spawn("sleeper", func(p *Proc) {
		p.Sleep(100 * Microsecond)
		woke = p.Now()
	})
	e.Run()
	if woke != 100*Microsecond {
		t.Errorf("woke at %v", woke)
	}
}

func TestProcSuspendWake(t *testing.T) {
	e := NewEngine()
	var order []string
	p := e.Spawn("waiter", func(p *Proc) {
		order = append(order, "before")
		p.Suspend()
		order = append(order, "after")
	})
	e.At(50, "waker", func() {
		order = append(order, "wake")
		p.Wake()
	})
	e.Run()
	want := []string{"before", "wake", "after"}
	for i := range want {
		if i >= len(order) || order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestProcUseChargesServer(t *testing.T) {
	e := NewEngine()
	s := NewServer(e, "cpu")
	var done Time
	e.Spawn("compute", func(p *Proc) {
		p.Use(s, 500)
		done = p.Now()
	})
	e.Run()
	if done != 500 {
		t.Errorf("compute finished at %v", done)
	}
	if s.BusyTotal() != 500 {
		t.Errorf("server busy %v", s.BusyTotal())
	}
}

func TestProcUseCycles(t *testing.T) {
	e := NewEngine()
	c := NewCPU(e, "host", 550e6)
	e.Spawn("compute", func(p *Proc) { p.UseCycles(c, 550) })
	e.Run()
	if e.Now() != 1000 {
		t.Errorf("550 cycles at 550 MHz ended at %v ns", int64(e.Now()))
	}
}

func TestTwoProcsInterleaveDeterministically(t *testing.T) {
	run := func() []string {
		e := NewEngine()
		var trace []string
		for _, name := range []string{"a", "b"} {
			name := name
			e.Spawn(name, func(p *Proc) {
				for i := 0; i < 3; i++ {
					trace = append(trace, name)
					p.Sleep(10)
				}
			})
		}
		e.Run()
		return trace
	}
	first := run()
	for trial := 0; trial < 5; trial++ {
		again := run()
		for i := range first {
			if again[i] != first[i] {
				t.Fatalf("nondeterministic interleaving: %v vs %v", first, again)
			}
		}
	}
}

func TestProcProducerConsumer(t *testing.T) {
	e := NewEngine()
	var queue []int
	var consumer *Proc
	consumed := []int{}
	consumer = e.Spawn("consumer", func(p *Proc) {
		for len(consumed) < 5 {
			for len(queue) == 0 {
				p.Suspend()
			}
			v := queue[0]
			queue = queue[1:]
			consumed = append(consumed, v)
		}
	})
	e.Spawn("producer", func(p *Proc) {
		for i := 0; i < 5; i++ {
			p.Sleep(10)
			item := i
			// Hand off via an engine event, as a device would.
			p.Engine().After(0, "deliver", func() {
				queue = append(queue, item)
				if !consumer.Done() {
					consumer.Wake()
				}
			})
		}
	})
	e.Run()
	if len(consumed) != 5 {
		t.Fatalf("consumed %v", consumed)
	}
	for i, v := range consumed {
		if v != i {
			t.Fatalf("consumed %v", consumed)
		}
	}
}

func TestWakeDeadProcPanics(t *testing.T) {
	e := NewEngine()
	p := e.Spawn("short", func(p *Proc) {})
	e.Run()
	defer func() {
		if recover() == nil {
			t.Error("Wake on dead proc did not panic")
		}
	}()
	p.Wake()
}
