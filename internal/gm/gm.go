// Package gm models the Myrinet adapter running Myricom's GM software as
// an IP link device — the paper's IP/Myrinet baseline (§4.2.1: "the
// Myrinet adapter running Myricom's GM v.1.4 software (9000 Byte MTU)").
// The host-based IP stack treats it as an Ethernet-like device; the LANai
// firmware moves each packet through adapter SRAM, so every packet pays
// firmware handling plus a store-and-forward DMA on each side, serialized
// by the single firmware loop — the same structural costs as the QPIP
// prototype, but with all protocol processing still on the host.
package gm

import (
	"repro/internal/fabric"
	"repro/internal/hostos"
	"repro/internal/hw"
	"repro/internal/params"
	"repro/internal/sim"
	"repro/internal/wire"
)

// FwPerPacketUS is the GM firmware's per-packet handling cost (token
// matching, staging, route prepend) on the 133 MHz LANai.
const FwPerPacketUS = 15.0

// Config parameterizes a GM adapter.
type Config struct {
	Name string
	// MTU of the IP interface (9000 in the paper's runs).
	MTU int
	// CoalescePkts / CoalesceDelay configure interrupt moderation.
	CoalescePkts  int
	CoalesceDelay sim.Time
}

// Device is one GM adapter.
type Device struct {
	cfg Config
	eng *sim.Engine
	k   *hostos.Kernel
	bus *hw.PCIBus
	fab *fabric.Fabric
	att int
	rx  *hostos.RxCoalescer
	// lanai serializes firmware handling: one packet at a time through
	// SRAM, like the GM event loop.
	lanai *sim.CPU

	// txQ serializes outbound packets through the firmware loop: one
	// packet stages through SRAM and onto the wire before the next
	// starts, as in GM's event loop.
	txQ    []txItem
	txBusy bool

	txPkts, rxPkts uint64
}

type txItem struct {
	pkt *wire.Packet
	dst int
}

// New attaches a GM adapter to the Myrinet fabric.
func New(eng *sim.Engine, k *hostos.Kernel, fab *fabric.Fabric, cfg Config) *Device {
	if cfg.MTU <= 0 {
		cfg.MTU = params.MTUJumbo
	}
	if cfg.CoalescePkts == 0 {
		cfg.CoalescePkts = 4
	}
	if cfg.CoalesceDelay == 0 {
		cfg.CoalesceDelay = 50 * sim.Microsecond
	}
	d := &Device{
		cfg:   cfg,
		eng:   eng,
		k:     k,
		bus:   k.Bus(),
		fab:   fab,
		lanai: sim.NewCPU(eng, cfg.Name+".lanai", params.NICClockHz),
	}
	d.att = fab.AttachOn(eng, d.receive)
	d.rx = hostos.NewRxCoalescer(k, cfg.Name, cfg.CoalescePkts, cfg.CoalesceDelay)
	return d
}

// IRQ exposes the receive interrupt line (pacing knob, coalescing-factor
// counters).
func (d *Device) IRQ() *hw.IRQLine { return d.rx.Line() }

// Name implements hostos.NetDevice.
func (d *Device) Name() string { return d.cfg.Name }

// MTU implements hostos.NetDevice.
func (d *Device) MTU() int { return d.cfg.MTU }

// Attachment reports the fabric attachment id.
func (d *Device) Attachment() int { return d.att }

// Stats reports (txPkts, rxPkts).
func (d *Device) Stats() (tx, rx uint64) { return d.txPkts, d.rxPkts }

// Transmit implements hostos.NetDevice: firmware stages the packet
// through SRAM (DMA at the GM IP-mode rate), then injects it. The loop
// handles one outbound packet at a time.
func (d *Device) Transmit(pkt *wire.Packet, dstAtt int) {
	d.txPkts++
	d.txQ = append(d.txQ, txItem{pkt: pkt, dst: dstAtt})
	d.kickTx()
}

func (d *Device) kickTx() {
	if d.txBusy || len(d.txQ) == 0 {
		return
	}
	d.txBusy = true
	it := d.txQ[0]
	d.txQ = d.txQ[1:]
	d.lanai.Do(params.US(FwPerPacketUS), d.cfg.Name+".fw.tx", func() {
		d.bus.BurstAt(it.pkt.Len(), params.GMDMABandwidth, d.cfg.Name+".txdma", func() {
			d.fab.Send(fabric.NewFrame(d.att, it.dst, it.pkt.Len()+params.MyrinetHeaderBytes, it.pkt), func() {
				d.txBusy = false
				d.kickTx()
			})
		})
	})
}

// receive stages an arriving packet through SRAM, then hands it to the
// unified rx coalescer, which paces the host interrupt and reaps.
func (d *Device) receive(f *fabric.Frame) {
	pkt, ok := f.Payload.(*wire.Packet)
	if !ok {
		return
	}
	d.rxPkts++
	d.lanai.Do(params.US(FwPerPacketUS), d.cfg.Name+".fw.rx", func() {
		d.bus.BurstAt(pkt.Len(), params.GMDMABandwidth, d.cfg.Name+".rxdma", func() {
			d.rx.Enqueue(pkt)
		})
	})
}
