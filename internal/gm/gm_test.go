package gm_test

import (
	"testing"

	"repro/internal/fabric"
	"repro/internal/gm"
	"repro/internal/hostos"
	"repro/internal/hw"
	"repro/internal/inet"
	"repro/internal/params"
	"repro/internal/sim"
	"repro/internal/wire"
)

func pair(t *testing.T) (*sim.Engine, [2]*hostos.Kernel, [2]*gm.Device) {
	t.Helper()
	eng := sim.NewEngine()
	fab := fabric.New(eng, fabric.Config{
		Name:         "myri",
		Bandwidth:    params.MyrinetBandwidth,
		LinkOverhead: params.MyrinetHeaderBytes,
		CutThrough:   true,
		HopLatency:   params.MyrinetHopLatency,
		PropDelay:    params.CableLatency,
	})
	var ks [2]*hostos.Kernel
	var ds [2]*gm.Device
	for i := 0; i < 2; i++ {
		bus := hw.NewPCIBus(eng, "pci", params.PCIBandwidth, params.PCIDMASetup, params.PCIWriteLatency)
		ks[i] = hostos.NewKernel(eng, "host", inet.NodeAddr4(i), nil, bus)
		ds[i] = gm.New(eng, ks[i], fab, gm.Config{Name: "myri0"})
	}
	return eng, ks, ds
}

func TestGMStagesThroughFirmware(t *testing.T) {
	eng, ks, ds := pair(t)
	pkt := &wire.Packet{
		IsV4: true,
		IPHdr: inet.Marshal4(&inet.Header4{
			TotalLen: uint16(inet.IPv4HeaderLen),
			TTL:      64,
			Protocol: 0xfd,
			Src:      inet.NodeAddr4(0),
			Dst:      inet.NodeAddr4(1),
		}),
	}
	var delivered sim.Time
	ds[0].Transmit(pkt, ds[1].Attachment())
	eng.Run()
	delivered = eng.Now()
	tx, _ := ds[0].Stats()
	_, rx := ds[1].Stats()
	if tx != 1 || rx != 1 {
		t.Fatalf("tx=%d rx=%d", tx, rx)
	}
	if ks[1].Stats().SoftIRQs != 1 {
		t.Fatalf("receiver softirqs = %d", ks[1].Stats().SoftIRQs)
	}
	// The firmware staging must add at least two FwPerPacketUS crossings.
	if delivered < 2*params.US(gm.FwPerPacketUS) {
		t.Errorf("delivery at %v is faster than the firmware allows", delivered)
	}
}

func TestGMTransmitSerializes(t *testing.T) {
	// Two back-to-back large packets: the second must wait for the first
	// to fully stage and inject (the GM event-loop behaviour).
	eng, _, ds := pair(t)
	mk := func() *wire.Packet {
		return &wire.Packet{
			IsV4: true,
			IPHdr: inet.Marshal4(&inet.Header4{
				TotalLen: uint16(inet.IPv4HeaderLen + 8000),
				TTL:      64, Protocol: 0xfd,
				Src: inet.NodeAddr4(0), Dst: inet.NodeAddr4(1),
			}),
		}
	}
	ds[0].Transmit(mk(), ds[1].Attachment())
	t1 := func() sim.Time {
		eng.Run()
		return eng.Now()
	}()
	ds[0].Transmit(mk(), ds[1].Attachment())
	eng.Run()
	t2 := eng.Now()
	if t2-0 < 2*t1-t1 { // second packet takes at least as long again
		t.Errorf("second packet finished suspiciously fast: t1=%v t2=%v", t1, t2)
	}
}

func TestGMDefaults(t *testing.T) {
	_, _, ds := pair(t)
	if ds[0].MTU() != params.MTUJumbo {
		t.Errorf("MTU = %d", ds[0].MTU())
	}
}
