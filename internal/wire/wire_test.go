package wire

import (
	"testing"

	"repro/internal/buf"
	"repro/internal/inet"
	"repro/internal/tcp"
)

func TestPacketLen(t *testing.T) {
	seg := tcp.Segment{WScale: -1}
	p := Packet{
		IPHdr:   inet.Marshal6(&inet.Header6{HopLimit: 64}),
		L4Hdr:   seg.MarshalHeader(),
		Payload: buf.Virtual(1000),
	}
	want := inet.IPv6HeaderLen + tcp.BaseHeaderLen + 1000
	if p.Len() != want {
		t.Errorf("Len = %d, want %d", p.Len(), want)
	}
}

func TestPacketLenEmpty(t *testing.T) {
	var p Packet
	if p.Len() != 0 {
		t.Errorf("empty packet Len = %d", p.Len())
	}
}
