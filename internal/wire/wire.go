// Package wire defines the network-layer packet representation shared by
// the QPIP NIC firmware and the host-based stacks. Headers are real
// marshaled bytes; the bulk payload rides as a buf.Buf so gigabyte
// transfers need not materialize.
//
// # Ownership
//
// Packets obtained from Get are reference-counted and recycled through a
// sync.Pool. The producer (a NIC transmit path or host stack) marshals the
// IP and transport headers into the packet's embedded scratch space, hands
// the packet to the fabric, and gives up ownership: whoever consumes the
// final delivery — the receiving NIC's protocol dispatch, or the fabric
// itself on a drop — calls Release exactly once. Retain adds a reference
// when one delivery must fan out (fault-injected duplication). Packets
// built with a plain composite literal are not pooled; Retain/Release are
// no-ops on them, so test code and fault-injection clones need no special
// handling.
package wire

import (
	"sync"

	"repro/internal/buf"
	"repro/internal/pool"
)

// Scratch sizes: a full IPv6 header (IPv4 needs less) and the largest
// transport header the simulator emits (TCP with every option is 44 bytes).
const (
	ipScratchLen = 40
	l4ScratchLen = 64
)

// Packet is one IP packet: a network header, a transport header, and the
// transport payload.
type Packet struct {
	// IsV4 selects IPv4 (host baseline stacks) vs IPv6 (QPIP, paper §4.1).
	IsV4 bool
	// IPHdr is the marshaled IPv4 or IPv6 header.
	IPHdr []byte
	// L4Hdr is the marshaled TCP or UDP header (checksum patched in).
	L4Hdr []byte
	// Payload is the transport payload.
	Payload buf.Buf
	// Epoch is the sender NIC's boot generation (QPIP adapters stamp it on
	// every frame; zero means "unversioned sender"). Receivers fence
	// connections with it: a frame from an older epoch is a stale pre-crash
	// straggler and is dropped, a newer epoch proves the peer rebooted
	// (DESIGN §13).
	Epoch uint32

	refs    int32
	pooled  bool
	scratch [ipScratchLen + l4ScratchLen]byte
}

// Len reports the packet's total network-layer length.
func (p *Packet) Len() int { return len(p.IPHdr) + len(p.L4Hdr) + p.Payload.Len() }

// Packet identity never reaches event order: Get re-initializes every field
// and refcounts police reuse, so pooling is invisible to the simulation.
//
//lint:qpip-allow nogoroutine free list only; no synchronization semantics leak into the model
var pktPool = sync.Pool{New: func() any { return new(Packet) }}

// Get returns an empty packet with one reference. Marshal headers into
// IPScratch/L4Scratch and point IPHdr/L4Hdr at the results.
func Get() *Packet {
	if !pool.Enabled() {
		return &Packet{refs: 1}
	}
	p := pktPool.Get().(*Packet)
	p.refs = 1
	p.pooled = true
	return p
}

// IPScratch returns the packet's embedded IP-header scratch space.
func (p *Packet) IPScratch() []byte { return p.scratch[:ipScratchLen] }

// L4Scratch returns the packet's embedded transport-header scratch space.
func (p *Packet) L4Scratch() []byte { return p.scratch[ipScratchLen:] }

// Retain adds a reference so the packet survives one extra Release. It is a
// no-op on packets that were not obtained from Get.
func (p *Packet) Retain() {
	if p.refs > 0 {
		p.refs++
	}
}

// Release drops one reference; the last one recycles a pooled packet. Extra
// Releases on non-refcounted packets are harmless no-ops.
func (p *Packet) Release() {
	if p.refs == 0 {
		return
	}
	p.refs--
	if p.refs == 0 && p.pooled {
		p.IsV4 = false
		p.IPHdr = nil
		p.L4Hdr = nil
		p.Payload = buf.Buf{}
		p.Epoch = 0
		p.pooled = false
		pktPool.Put(p)
	}
}
