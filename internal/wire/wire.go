// Package wire defines the network-layer packet representation shared by
// the QPIP NIC firmware and the host-based stacks. Headers are real
// marshaled bytes; the bulk payload rides as a buf.Buf so gigabyte
// transfers need not materialize.
package wire

import "repro/internal/buf"

// Packet is one IP packet: a network header, a transport header, and the
// transport payload.
type Packet struct {
	// IsV4 selects IPv4 (host baseline stacks) vs IPv6 (QPIP, paper §4.1).
	IsV4 bool
	// IPHdr is the marshaled IPv4 or IPv6 header.
	IPHdr []byte
	// L4Hdr is the marshaled TCP or UDP header (checksum patched in).
	L4Hdr []byte
	// Payload is the transport payload.
	Payload buf.Buf
}

// Len reports the packet's total network-layer length.
func (p *Packet) Len() int { return len(p.IPHdr) + len(p.L4Hdr) + p.Payload.Len() }
