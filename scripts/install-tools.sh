#!/bin/sh
# Install the optional static-analysis tooling `make check` runs when
# present (staticcheck, the shadow vet pass, govulncheck), and build the
# repo's own qpiplint into bin/. The gate degrades gracefully without the
# optional tools — qpiplint is the only mandatory analyzer and builds from
# this tree with no network access.
#
# Usage: scripts/install-tools.sh
set -eu

cd "$(dirname "$0")/.."

echo "==> building bin/qpiplint (mandatory, no network needed)"
go build -o bin/qpiplint ./cmd/qpiplint

# Tool versions are pinned so every checkout runs the same analyzers: a
# version bump is a reviewed diff here, not a drive-by @latest change in
# whatever environment happened to run this script first.
STATICCHECK_VERSION=2025.1.1
XTOOLS_VERSION=v0.33.0
GOVULNCHECK_VERSION=v1.1.4

install_tool() {
	name=$1
	pkg=$2
	if command -v "$name" >/dev/null 2>&1; then
		echo "==> $name already installed ($(command -v "$name"))"
		return
	fi
	echo "==> installing $name ($pkg)"
	if ! go install "$pkg"; then
		echo "    $name install failed (offline?); make check will skip it" >&2
	fi
}

install_tool staticcheck "honnef.co/go/tools/cmd/staticcheck@$STATICCHECK_VERSION"
install_tool shadow "golang.org/x/tools/go/analysis/passes/shadow/cmd/shadow@$XTOOLS_VERSION"
install_tool govulncheck "golang.org/x/vuln/cmd/govulncheck@$GOVULNCHECK_VERSION"

echo "==> done; 'make check' will use everything it found on PATH"
