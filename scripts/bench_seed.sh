#!/bin/sh
# bench_seed.sh — measure the pre-PR-2 simulator's ttcp event throughput.
#
# Checks out the seed commit (the tree as it was before the performance
# work) into a throwaway git worktree, drops scripts/seedperf_main.go.tmpl
# in as cmd/seedperf/main.go, and runs it. Prints one JSON object on
# stdout:
#
#   {"config":"seed commit","gomaxprocs":...,"shards":1,"wall_seconds":...,
#    "events_fired":...,"events_per_sec":...,"sim_mbps":...}
#
# gomaxprocs/shards identify the machine parallelism the row was measured
# under (the seed is always a single sequential engine, so shards is 1);
# PerfReport rows carry the same two fields so any row in any BENCH_*.json
# is comparable at a glance.
#
# Usage: scripts/bench_seed.sh [BYTES] [REPEATS]
set -eu

SEED_COMMIT=${SEED_COMMIT:-71591615beaf221f3798408dbb9d93ef1f9887ea}
BYTES=${1:-4194304}
REPEATS=${2:-3}

root=$(git rev-parse --show-toplevel)
wt="$root/.seedbench-worktree"

cleanup() {
	git -C "$root" worktree remove --force "$wt" >/dev/null 2>&1 || true
	rm -rf "$wt"
}
trap cleanup EXIT INT TERM

cleanup
git -C "$root" worktree add --detach "$wt" "$SEED_COMMIT" >/dev/null
mkdir -p "$wt/cmd/seedperf"
cp "$root/scripts/seedperf_main.go.tmpl" "$wt/cmd/seedperf/main.go"
cd "$wt"
go build ./cmd/seedperf
./seedperf -bytes "$BYTES" -repeats "$REPEATS"
