GO ?= go

.PHONY: build test vet shadow lint lint-baseline staticcheck govulncheck race fuzz check bench microbench chaos

# Accepted-findings baseline for qpiplint. When the file exists, `make
# lint` fails only on findings not recorded in it; `make lint-baseline`
# re-records the current findings (review the diff before committing).
LINT_BASELINE := internal/analysis/baseline.json

# Official performance measurement size and repetitions.
BENCH_BYTES ?= 33554432
BENCH_REPEATS ?= 5

build:
	$(GO) build ./...

test: build
	$(GO) test ./...

vet:
	$(GO) vet ./...

# shadow is optional tooling (x/tools vet pass for shadowed variables):
# run it when installed, note the skip when not.
shadow:
	@if command -v shadow >/dev/null 2>&1; then \
		$(GO) vet -vettool=$$(command -v shadow) ./...; \
	else \
		echo "shadow: not installed, skipping (scripts/install-tools.sh installs it)"; \
	fi

# qpiplint is the repo's own determinism / datapath analyzer suite
# (cmd/qpiplint, DESIGN §12). It is built from this tree, so it is never
# "not installed" — a build failure fails the gate loudly rather than
# skipping the lint.
lint:
	@$(GO) build -o bin/qpiplint ./cmd/qpiplint || \
		{ echo "lint: FAILED to build cmd/qpiplint — the lint gate cannot run" >&2; exit 1; }
	@if [ -f $(LINT_BASELINE) ]; then \
		echo "bin/qpiplint -baseline $(LINT_BASELINE) ./..."; \
		bin/qpiplint -baseline $(LINT_BASELINE) ./...; \
	else \
		bin/qpiplint ./...; \
	fi

# Re-record the accepted-findings baseline. A finding in the baseline is
# grandfathered (make lint reports only new ones); shrink it over time,
# don't grow it casually.
lint-baseline:
	@$(GO) build -o bin/qpiplint ./cmd/qpiplint || \
		{ echo "lint-baseline: FAILED to build cmd/qpiplint" >&2; exit 1; }
	bin/qpiplint -write-baseline $(LINT_BASELINE) ./...
	@echo "wrote $(LINT_BASELINE); review the diff before committing"

# staticcheck is optional tooling: run it when installed, note the skip
# when not (CI images without it still pass the gate on vet + tests).
staticcheck:
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	else \
		echo "staticcheck: not installed, skipping (go vet + qpiplint still enforced)"; \
	fi

# govulncheck is optional tooling: advisory scan, run when installed.
govulncheck:
	@if command -v govulncheck >/dev/null 2>&1; then \
		govulncheck ./...; \
	else \
		echo "govulncheck: not installed, skipping (scripts/install-tools.sh installs it)"; \
	fi

race:
	$(GO) test -race ./...

# Short smoke run of every fuzz target (header parsers); the committed
# seed corpora also run as part of plain `go test`. The fuzz cache dir is
# created up front: a fresh GOCACHE otherwise fails the first -fuzz run.
fuzz:
	@mkdir -p "$$($(GO) env GOCACHE)/fuzz"
	$(GO) test -run=Fuzz -fuzz=FuzzParse4 -fuzztime=5s ./internal/inet
	$(GO) test -run=Fuzz -fuzz=FuzzParse6 -fuzztime=5s ./internal/inet
	$(GO) test -run=Fuzz -fuzz=FuzzParseHeader -fuzztime=5s ./internal/tcp
	$(GO) test -run=Fuzz -fuzz=FuzzParse -fuzztime=5s ./internal/udp
	$(GO) test -run=Fuzz -fuzz=FuzzVerify4 -fuzztime=5s ./internal/udp

# The verification gate: go vet, the optional shadow pass, the repo's own
# qpiplint suite (mandatory — proves the determinism and datapath
# invariants, DESIGN §12), optional staticcheck and govulncheck, the full
# suite under the race detector, the plain suite (also exercises the fuzz
# seed corpora), a one-shot perf smoke so a broken harness fails the gate,
# not the bench run, the perf guard (the batched boundary must be no
# slower in wall clock than the per-token datapath), the shard-barrier
# race run (the parallel runner and the sequential/sharded equivalence
# matrix under -race, beyond the all-package race target above), and the
# scale guard (sharded runs fire the identical event count and hit the
# speedup floor for however many cores this host actually has), and the
# connection-density guard (SRQ pooling must beat private receive queues
# on per-connection memory at high QP counts without a CPU regression,
# and churn must leave no residual connection state).
check: vet shadow lint staticcheck govulncheck race test chaos
	$(GO) run ./cmd/qpipbench -exp perf -bytes 1048576 -perf-repeats 1 >/dev/null
	$(GO) run ./cmd/qpipbench -exp perfguard -bytes 4194304
	$(GO) test -race -count=1 -run 'TestParallel|TestRunPingPong|TestRunUntilLimit|TestFreeRun|TestShardPanic' ./qpip/ ./internal/sim/par/
	$(GO) run ./cmd/qpipbench -exp scaleguard -bytes 4194304
	$(GO) run ./cmd/qpipbench -exp collective -coll-nodes 2,8 -coll-iters 2 >/dev/null
	$(GO) run ./cmd/qpipbench -exp collguard -coll-iters 2
	$(GO) run ./cmd/qpipbench -exp connguard

# Regenerate BENCH_PR4.json: microbenchmarks, the seed-commit baseline
# (built from a throwaway worktree of the pre-PR tree), and the in-binary
# A/B comparison with the seed measurement folded in. Then BENCH_PR7.json:
# the parallel-scaling table (sequential baseline vs sharded placements,
# events cross-checked identical, gomaxprocs recorded per row). Then
# BENCH_PR8.json: the collectives sweep (host-based vs NIC-offloaded
# barrier and ring allreduce across ring/mesh/fat-tree topologies).
# Then BENCH_PR9.json: the connection-density sweep (incast / churn /
# many-client NBD at 64->8192 connections, SRQ vs private receive
# queues vs the host stacks).
bench: microbench
	scripts/bench_seed.sh $(BENCH_BYTES) $(BENCH_REPEATS) > /tmp/seed_baseline.json
	$(GO) run ./cmd/qpipbench -exp perf -bytes $(BENCH_BYTES) \
		-perf-repeats $(BENCH_REPEATS) \
		-seed-json /tmp/seed_baseline.json -json BENCH_PR4.json
	$(GO) run ./cmd/qpipbench -exp perfscale -bytes 8388608 \
		-perf-repeats $(BENCH_REPEATS) -json BENCH_PR7.json
	$(GO) run ./cmd/qpipbench -exp collective -json BENCH_PR8.json
	$(GO) run ./cmd/qpipbench -exp connscale -json BENCH_PR9.json

microbench:
	$(GO) test -bench=. -benchmem ./internal/sim/ ./internal/tcp/ ./internal/fabric/

# The fixed-seed failure matrix: link-level chaos (drops, corruption,
# duplication, flaps) through the frame-chaos experiment, then the
# node-level crash/flap/partition matrix — adapter crash/restart, both
# ends crashing, sustained flaps, asymmetric partitions — each verified
# bytes-exactly-once and trace-identical across reruns, and the recovery
# sweep end to end (exits nonzero if any point is not byte-exact).
chaos:
	$(GO) test -run 'TestRecoveryChaos|TestRecoveryFaultFree' -count=1 ./internal/nbd/
	$(GO) run ./cmd/qpipbench -exp chaos
	$(GO) run ./cmd/qpipbench -exp recovery -bytes 1048576 >/dev/null
