GO ?= go

.PHONY: build test vet race fuzz check bench chaos

build:
	$(GO) build ./...

test: build
	$(GO) test ./...

vet:
	$(GO) vet ./...

race:
	$(GO) test -race ./...

# Short smoke run of every fuzz target (header parsers); the committed
# seed corpora also run as part of plain `go test`.
fuzz:
	$(GO) test -run=Fuzz -fuzz=FuzzParse4 -fuzztime=5s ./internal/inet
	$(GO) test -run=Fuzz -fuzz=FuzzParse6 -fuzztime=5s ./internal/inet
	$(GO) test -run=Fuzz -fuzz=FuzzParseHeader -fuzztime=5s ./internal/tcp
	$(GO) test -run=Fuzz -fuzz=FuzzParse -fuzztime=5s ./internal/udp
	$(GO) test -run=Fuzz -fuzz=FuzzVerify4 -fuzztime=5s ./internal/udp

# The verification gate: static analysis, the full suite under the race
# detector, and the plain suite (also exercises the fuzz seed corpora).
check: vet race test

bench:
	$(GO) test -bench=. -benchmem

chaos:
	$(GO) run ./cmd/qpipbench -exp chaos
