GO ?= go

.PHONY: build test vet staticcheck race fuzz check bench microbench chaos

# Official performance measurement size and repetitions.
BENCH_BYTES ?= 33554432
BENCH_REPEATS ?= 5

build:
	$(GO) build ./...

test: build
	$(GO) test ./...

vet:
	$(GO) vet ./...

# staticcheck is optional tooling: run it when installed, note the skip
# when not (CI images without it still pass the gate on vet + tests).
staticcheck:
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	else \
		echo "staticcheck: not installed, skipping (go vet still enforced)"; \
	fi

race:
	$(GO) test -race ./...

# Short smoke run of every fuzz target (header parsers); the committed
# seed corpora also run as part of plain `go test`.
fuzz:
	$(GO) test -run=Fuzz -fuzz=FuzzParse4 -fuzztime=5s ./internal/inet
	$(GO) test -run=Fuzz -fuzz=FuzzParse6 -fuzztime=5s ./internal/inet
	$(GO) test -run=Fuzz -fuzz=FuzzParseHeader -fuzztime=5s ./internal/tcp
	$(GO) test -run=Fuzz -fuzz=FuzzParse -fuzztime=5s ./internal/udp
	$(GO) test -run=Fuzz -fuzz=FuzzVerify4 -fuzztime=5s ./internal/udp

# The verification gate: static analysis, the full suite under the race
# detector, the plain suite (also exercises the fuzz seed corpora), a
# one-shot perf smoke so a broken harness fails the gate, not the bench
# run, and the perf guard (the batched boundary must be no slower in wall
# clock than the per-token datapath).
check: vet staticcheck race test
	$(GO) run ./cmd/qpipbench -exp perf -bytes 1048576 -perf-repeats 1 >/dev/null
	$(GO) run ./cmd/qpipbench -exp perfguard -bytes 4194304

# Regenerate BENCH_PR4.json: microbenchmarks, the seed-commit baseline
# (built from a throwaway worktree of the pre-PR tree), and the in-binary
# A/B comparison with the seed measurement folded in.
bench: microbench
	scripts/bench_seed.sh $(BENCH_BYTES) $(BENCH_REPEATS) > /tmp/seed_baseline.json
	$(GO) run ./cmd/qpipbench -exp perf -bytes $(BENCH_BYTES) \
		-perf-repeats $(BENCH_REPEATS) \
		-seed-json /tmp/seed_baseline.json -json BENCH_PR4.json

microbench:
	$(GO) test -bench=. -benchmem ./internal/sim/ ./internal/tcp/ ./internal/fabric/

chaos:
	$(GO) run ./cmd/qpipbench -exp chaos
